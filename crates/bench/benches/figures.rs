//! Figure-level benchmarks: the analysis and synthesis steps behind
//! Figures 1–4 and Examples 1–2.

use criterion::{criterion_group, criterion_main, Criterion};
use simc_benchmarks::figures;
use simc_mc::assign::{reduce_to_mc, ReduceOptions};
use simc_mc::baseline::synthesize_baseline;
use simc_mc::synth::{synthesize, Target};
use simc_mc::McCheck;
use simc_netlist::{verify, VerifyOptions};

fn bench_figures(c: &mut Criterion) {
    let fig1 = figures::figure1();
    let fig3 = figures::figure3();
    let fig4 = figures::figure4();

    let mut group = c.benchmark_group("figures");

    // Figure 1: region analysis + the MC check that drives Example 1.
    group.bench_function("fig1/mc_check", |b| {
        b.iter(|| McCheck::new(std::hint::black_box(&fig1)).report().violation_count())
    });
    // Example 1: MC-reduction of Figure 1 (the paper inserts signal x).
    group.bench_function("fig1/mc_reduction", |b| {
        b.iter(|| {
            reduce_to_mc(std::hint::black_box(&fig1), ReduceOptions::default())
                .expect("figure 1 reduces")
                .added
        })
    });
    // Figure 3: full synthesis of the MC form.
    group.bench_function("fig3/synthesize_c", |b| {
        b.iter(|| {
            synthesize(std::hint::black_box(&fig3), Target::CElement)
                .expect("figure 3 synthesizes")
                .cube_count()
        })
    });
    // Figure 3: gate-level verification of the synthesized circuit.
    let implementation = synthesize(&fig3, Target::CElement).expect("synthesizes");
    let netlist = implementation.to_netlist().expect("netlist");
    group.bench_function("fig3/verify", |b| {
        b.iter(|| {
            verify(
                std::hint::black_box(&netlist),
                std::hint::black_box(&fig3),
                VerifyOptions::default(),
            )
            .expect("runs")
            .explored
        })
    });
    // Example 2: baseline synthesis + hazard detection on Figure 4.
    let baseline = synthesize_baseline(&fig4, Target::CElement).expect("baseline");
    let bad_netlist = baseline.to_netlist().expect("netlist");
    group.bench_function("fig4/baseline_synthesis", |b| {
        b.iter(|| {
            synthesize_baseline(std::hint::black_box(&fig4), Target::CElement)
                .expect("baseline")
                .cube_count()
        })
    });
    group.bench_function("fig4/hazard_detection", |b| {
        b.iter(|| {
            verify(
                std::hint::black_box(&bad_netlist),
                std::hint::black_box(&fig4),
                VerifyOptions::default(),
            )
            .expect("runs")
            .violations
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
