//! Scaling sweep (extension experiment S1): Muller pipelines of growing
//! depth, through each phase of the flow — reachability, region
//! analysis, MC check, synthesis and verification. State counts grow as
//! `~2^n`, exposing the asymptotics of each phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simc_benchmarks::generators;
use simc_mc::synth::{synthesize, Target};
use simc_mc::McCheck;
use simc_netlist::{verify, VerifyOptions};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/pipeline");
    group.sample_size(10);
    for n in [2usize, 4, 6, 8] {
        let stg = generators::muller_pipeline(n).expect("generator");
        let sg = stg.to_state_graph().expect("reaches");

        group.bench_with_input(BenchmarkId::new("reachability", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(&stg).to_state_graph().unwrap().state_count())
        });
        group.bench_with_input(BenchmarkId::new("regions", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(&sg).regions().er_count())
        });
        group.bench_with_input(BenchmarkId::new("mc_check", n), &n, |b, _| {
            b.iter(|| McCheck::new(std::hint::black_box(&sg)).report().satisfied())
        });
        group.bench_with_input(BenchmarkId::new("synthesize", n), &n, |b, _| {
            b.iter(|| {
                synthesize(std::hint::black_box(&sg), Target::CElement)
                    .unwrap()
                    .cube_count()
            })
        });
        if n <= 6 {
            let netlist = synthesize(&sg, Target::CElement)
                .unwrap()
                .to_netlist()
                .unwrap();
            group.bench_with_input(BenchmarkId::new("verify", n), &n, |b, _| {
                b.iter(|| {
                    verify(
                        std::hint::black_box(&netlist),
                        std::hint::black_box(&sg),
                        VerifyOptions::default(),
                    )
                    .unwrap()
                    .explored
                })
            });
        }
    }
    group.finish();
}

fn bench_sequencer_reduction(c: &mut Criterion) {
    // MC-reduction cost over the generalized sequencer family — the
    // hardest shape in Table 1, parameterized by round count.
    use simc_mc::assign::{reduce_to_mc, ReduceOptions};
    let mut group = c.benchmark_group("scaling/sequencer_reduction");
    group.sample_size(10);
    for n in [1usize, 2, 3] {
        let sg = generators::sequencer(n)
            .expect("generator")
            .to_state_graph()
            .expect("reaches");
        group.bench_with_input(BenchmarkId::new("rounds", n), &n, |b, _| {
            b.iter(|| {
                reduce_to_mc(std::hint::black_box(&sg), ReduceOptions::default())
                    .expect("reduces")
                    .added
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_sequencer_reduction);
criterion_main!(benches);
