//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * SAT-backed complete MC-cube search vs. the greedy literal-dropping
//!   heuristic;
//! * C-element vs. dual-rail RS target;
//! * generalized (gate-sharing) vs. plain per-region synthesis.

use criterion::{criterion_group, criterion_main, Criterion};
use simc_benchmarks::{figures, generators};
use simc_mc::gen::synthesize_generalized;
use simc_mc::synth::{synthesize, Target};
use simc_mc::McCheck;

fn bench_cube_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/mc_cube_search");
    // Figure 3 exercises both easy regions and ones needing literal work.
    let sg = figures::figure3();
    group.bench_function("sat_complete", |b| {
        b.iter(|| {
            let check = McCheck::new(std::hint::black_box(&sg));
            check
                .regions()
                .ers()
                .map(|(er, _)| check.mc_cube(er).is_ok() as usize)
                .sum::<usize>()
        })
    });
    group.bench_function("greedy_incomplete", |b| {
        b.iter(|| {
            let check = McCheck::new(std::hint::black_box(&sg));
            check
                .regions()
                .ers()
                .map(|(er, _)| check.mc_cube_greedy(er).is_some() as usize)
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_targets(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/target");
    let sg = generators::muller_pipeline(5)
        .expect("generator")
        .to_state_graph()
        .expect("reaches");
    group.bench_function("c_element", |b| {
        b.iter(|| {
            synthesize(std::hint::black_box(&sg), Target::CElement)
                .unwrap()
                .to_netlist()
                .unwrap()
                .gate_count()
        })
    });
    group.bench_function("rs_latch", |b| {
        b.iter(|| {
            synthesize(std::hint::black_box(&sg), Target::RsLatch)
                .unwrap()
                .to_netlist()
                .unwrap()
                .gate_count()
        })
    });
    group.finish();
}

fn bench_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/sharing");
    let sg = figures::figure3();
    group.bench_function("plain", |b| {
        b.iter(|| synthesize(std::hint::black_box(&sg), Target::CElement).unwrap().cube_count())
    });
    group.bench_function("generalized", |b| {
        b.iter(|| {
            synthesize_generalized(std::hint::black_box(&sg), Target::CElement)
                .unwrap()
                .cube_count()
        })
    });
    group.finish();
}

fn bench_decomposition(c: &mut Criterion) {
    // Fanin-bounded decomposition + re-verification: the cost of checking
    // whether the two-level hazard-freedom guarantee survives a
    // basic-gate library mapping.
    use simc_netlist::{verify, VerifyOptions};
    let mut group = c.benchmark_group("ablation/decomposition");
    let sg = figures::figure3();
    let netlist = synthesize(&sg, Target::CElement)
        .unwrap()
        .to_netlist()
        .unwrap();
    group.bench_function("decompose_fanin2", |b| {
        b.iter(|| std::hint::black_box(&netlist).decomposed(2).unwrap().gate_count())
    });
    let small = netlist.decomposed(2).unwrap();
    group.bench_function("reverify_flat", |b| {
        b.iter(|| {
            verify(std::hint::black_box(&netlist), &sg, VerifyOptions::default())
                .unwrap()
                .violations
                .len()
        })
    });
    group.bench_function("reverify_decomposed", |b| {
        b.iter(|| {
            verify(std::hint::black_box(&small), &sg, VerifyOptions::default())
                .unwrap()
                .violations
                .len()
        })
    });
    group.finish();
}

fn bench_complex_vs_basic(c: &mut Criterion) {
    // The paper's motivating trade-off: complex gates need only CSC
    // (Figure 1 directly), basic gates need MC-reduction first.
    use simc_mc::assign::{reduce_to_mc, ReduceOptions};
    use simc_mc::complex::synthesize_complex;
    let mut group = c.benchmark_group("ablation/style");
    let sg = figures::figure1();
    group.bench_function("complex_gates_direct", |b| {
        b.iter(|| synthesize_complex(std::hint::black_box(&sg)).unwrap().gate_count())
    });
    group.bench_function("basic_gates_via_reduction", |b| {
        b.iter(|| {
            let reduced = reduce_to_mc(std::hint::black_box(&sg), ReduceOptions::default())
                .unwrap();
            synthesize(&reduced.sg, Target::CElement)
                .unwrap()
                .to_netlist()
                .unwrap()
                .gate_count()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cube_search,
    bench_targets,
    bench_sharing,
    bench_decomposition,
    bench_complex_vs_basic
);
criterion_main!(benches);
