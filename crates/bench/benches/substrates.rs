//! Substrate micro-benchmarks (extension experiment S2): the SAT solver
//! near the random-3SAT threshold, cube-cover minimization, and STG
//! parsing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simc_cube::{minimize, MinimizeOptions};
use simc_sat::{Lit, Solver};

/// Deterministic xorshift for reproducible instances.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn random_3sat(vars: usize, clauses: usize, seed: u64) -> Vec<[i32; 3]> {
    let mut rng = Rng(seed);
    (0..clauses)
        .map(|_| {
            let mut clause = [0i32; 3];
            for slot in &mut clause {
                let v = (rng.next() % vars as u64) as i32 + 1;
                *slot = if rng.next().is_multiple_of(2) { v } else { -v };
            }
            clause
        })
        .collect()
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/sat");
    for vars in [40usize, 60, 80] {
        // Clause ratio 4.0: mixed SAT/UNSAT region, realistic work.
        let clauses = random_3sat(vars, vars * 4, 0x5eed + vars as u64);
        group.bench_with_input(BenchmarkId::new("random3sat", vars), &vars, |b, _| {
            b.iter(|| {
                let mut solver = Solver::new();
                let vs: Vec<_> = (0..vars).map(|_| solver.new_var()).collect();
                for clause in &clauses {
                    solver.add_clause(clause.iter().map(|&l| {
                        Lit::with_polarity(vs[(l.unsigned_abs() - 1) as usize], l > 0)
                    }));
                }
                solver.solve().is_sat()
            })
        });
    }
    group.finish();
}

fn bench_cube(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/cube");
    for n in [8usize, 12] {
        let mut rng = Rng(0xc0ffee + n as u64);
        let mut on = Vec::new();
        let mut off = Vec::new();
        for p in 0u64..(1 << n) {
            match rng.next() % 4 {
                0 => on.push(p),
                1 => off.push(p),
                _ => {}
            }
        }
        group.bench_with_input(BenchmarkId::new("minimize", n), &n, |b, _| {
            b.iter(|| {
                minimize(
                    std::hint::black_box(&on),
                    std::hint::black_box(&off),
                    MinimizeOptions::new(n),
                )
                .unwrap()
                .len()
            })
        });
    }
    group.finish();
}

fn bench_stg(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/stg");
    let text = simc_benchmarks::suite::nak_pa().stg.to_g_string();
    group.bench_function("parse_nak_pa", |b| {
        b.iter(|| simc_stg::parse_g(std::hint::black_box(&text)).unwrap().transition_count())
    });
    let stg = simc_benchmarks::suite::nak_pa().stg;
    group.bench_function("reach_nak_pa", |b| {
        b.iter(|| std::hint::black_box(&stg).to_state_graph().unwrap().state_count())
    });
    group.finish();
}

criterion_group!(benches, bench_sat, bench_cube, bench_stg);
criterion_main!(benches);
