//! Table 1 benchmark: MC-reduction (state-signal insertion) per circuit.
//!
//! The paper reports all nine examples complete "within a 5 minutes
//! timeout limit on a DEC 5000"; this bench measures the same runs on
//! modern hardware. The two deep sequencers are the slowest and get a
//! reduced sample count.

use criterion::{criterion_group, criterion_main, Criterion};
use simc_benchmarks::suite;
use simc_mc::assign::{reduce_to_mc, ReduceOptions};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/mc_reduction");
    for b in suite::all() {
        let sg = b.stg.to_state_graph().expect("benchmark reaches");
        let slow = matches!(b.name, "ganesh_8" | "berkel3" | "duplicator" | "berkel2");
        group.sample_size(if slow { 10 } else { 20 });
        group.bench_function(b.name, |bencher| {
            bencher.iter(|| {
                reduce_to_mc(std::hint::black_box(&sg), ReduceOptions::default())
                    .expect("reduction succeeds")
                    .added
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_table1
}
criterion_main!(benches);
