//! Small table/report formatting helpers shared by the `repro_*`
//! binaries.

use std::fmt::Write as _;

/// A plain-text/markdown table builder with fixed column headers.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        fmt_row(&mut out, &rule);
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_text_and_markdown() {
        let mut t = Table::new(&["name", "n"]);
        t.row(&["toggle".into(), "4".into()]);
        let text = t.to_text();
        assert!(text.contains("toggle"));
        assert_eq!(text.lines().count(), 3);
        let md = t.to_markdown();
        assert!(md.starts_with("| name | n |"));
        assert!(md.contains("| toggle | 4 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
