//! Reproduction harness for the paper's tables and figures.
//!
//! The `repro_*` binaries regenerate each experimental artifact:
//!
//! * `repro_table1` — Table 1 (MC-reduction on the benchmark suite);
//! * `repro_example1` — Example 1 / Figures 1 & 3 (baseline vs. MC
//!   implementations, equation and area comparison);
//! * `repro_example2` — Example 2 / Figure 4 (the hazard the baseline
//!   misses, with the verifier's witness trace);
//! * `repro_figures` — region/analysis facts the figures annotate;
//! * `repro_pipeline` — per-phase wall-clock profile of the pipeline over
//!   the suite, sequential vs. parallel (`BENCH_pipeline.json`).
//!
//! The Criterion benches under `benches/` measure the same flows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profile;
pub mod report;
