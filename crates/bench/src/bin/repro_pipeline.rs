//! Profiles the full synthesis pipeline over the benchmark suite,
//! sequentially and in parallel, and emits `BENCH_pipeline.json`.
//!
//! Per benchmark the pipeline is: STG reachability → MC-reduction →
//! region analysis → MC cover search → synthesis + verification; each
//! phase is wall-clock timed. The parallel run uses `ParallelSynth` both
//! across benchmarks and inside each cover search.
//!
//! Usage: `repro_pipeline [--threads N] [--out PATH] [--markdown]`
//! (threads defaults to the machine's available parallelism, floor 4;
//! out defaults to `BENCH_pipeline.json` in the current directory).

use simc_bench::profile::{to_json, SuiteRun};
use simc_bench::report::Table;
use simc_benchmarks::suite;

fn usage() -> ! {
    eprintln!("usage: repro_pipeline [--threads N] [--out PATH] [--markdown]");
    std::process::exit(2);
}

fn main() {
    let mut threads = None;
    let mut out_path = None;
    let mut markdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("error: --threads requires a value");
                    usage()
                });
                threads = Some(v.parse::<usize>().map(|n| n.max(1)).unwrap_or_else(|_| {
                    eprintln!("error: --threads takes a positive integer, got `{v}`");
                    usage()
                }));
            }
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("error: --out requires a path");
                    usage()
                }));
            }
            "--markdown" => markdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage()
            }
        }
    }
    let threads = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()).max(4));
    let out_path = out_path.unwrap_or_else(|| "BENCH_pipeline.json".to_string());

    let benchmarks = suite::all();
    let sequential = SuiteRun::sweep("sequential", &benchmarks, 1);
    let parallel = SuiteRun::sweep(&format!("parallel-{threads}"), &benchmarks, threads);

    let mut table = Table::new(&[
        "example", "states", "reach ms", "regions ms", "cover ms", "assign ms", "verify ms",
        "total ms", "verified",
    ]);
    let ms = |s: f64| format!("{:.2}", s * 1e3);
    for t in &sequential.timings {
        table.row(&[
            t.name.clone(),
            t.states.to_string(),
            ms(t.reach),
            ms(t.regions),
            ms(t.cover),
            ms(t.assign),
            ms(t.verify),
            ms(t.total()),
            if t.verified { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("Pipeline phase profile (sequential) — {} benchmarks", benchmarks.len());
    println!();
    if markdown {
        print!("{}", table.to_markdown());
    } else {
        print!("{}", table.to_text());
    }
    println!();
    println!(
        "sequential wall: {:.1} ms   parallel-{} wall: {:.1} ms   speedup: {:.2}x",
        sequential.wall * 1e3,
        threads,
        parallel.wall * 1e3,
        sequential.wall / parallel.wall
    );

    // Every thread count must produce identical results.
    for (s, p) in sequential.timings.iter().zip(&parallel.timings) {
        assert_eq!(s.name, p.name);
        assert_eq!(s.states, p.states, "{}: state count differs across thread counts", s.name);
        assert_eq!(s.verified, p.verified, "{}: verdict differs across thread counts", s.name);
    }

    let json = to_json(&[sequential, parallel]);
    std::fs::write(&out_path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {out_path}");
}
