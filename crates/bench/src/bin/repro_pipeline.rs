//! Profiles the full synthesis pipeline over the benchmark suite,
//! sequentially and in parallel, and emits `BENCH_pipeline.json`.
//!
//! Per benchmark the pipeline is: STG reachability → MC-reduction →
//! region analysis → MC cover search → synthesis + verification; each
//! phase is wall-clock timed via `simc_obs` spans. A second, sequential
//! pass re-runs every benchmark with the observability counters on and
//! records the paper-table structural columns (states, inserted signals,
//! gates, literals) plus the full counter report. A third pass runs each
//! benchmark twice through the typed pipeline over a shared artifact
//! cache and records cold-vs-warm wall-clock (the `cache` section). The
//! timed sweeps run with counters *off*, so the recorded timings measure
//! the pipeline at its zero-overhead default. A final deterministic pass
//! compares coverage-guided fuzz campaigns against fresh-only generation
//! at a fixed budget (the `fuzz_coverage` section) and fails unless the
//! campaign reaches at least twice the fresh-only edge count.
//!
//! Usage: `repro_pipeline [--threads N] [--out PATH] [--markdown]
//! [--smoke] [--check BASELINE]`
//!
//! * `--threads N`   parallel-run worker count (defaults to the machine's
//!   available parallelism, floor 4)
//! * `--out PATH`    output path (default `BENCH_pipeline.json`)
//! * `--smoke`       only profile a 2-benchmark subset (CI gate)
//! * `--check PATH`  compare against a committed baseline: structural
//!   columns and counters must match exactly, per-benchmark totals must
//!   not regress more than 10% (plus a small absolute grace for
//!   sub-millisecond phases); exits 1 on regression

use simc_bench::profile::{
    cache_sweep, counters_sweep, fuzz_coverage_sweep, scale_sweep, to_json_with_history,
    BenchmarkCounters, FuzzCoverage, ScaleTimings, SuiteRun,
};
use simc_bench::report::Table;
use simc_benchmarks::{scale, suite};
use simc_obs::json::{self, Value};

/// Benchmarks profiled under `--smoke`: one trivial spec and the two
/// insertion-heavy sequencers, so the gate exercises both pipeline halves
/// and the state-assignment hot path at its deepest.
const SMOKE_SET: &[&str] = &["duplicator", "berkel3", "ganesh_8"];

/// Relative regression tolerance for `--check`.
const CHECK_RELATIVE: f64 = 0.10;

/// Absolute grace in seconds: sub-millisecond phases jitter far beyond
/// 10% between runs, so small absolute drift is never a regression.
const CHECK_ABSOLUTE_S: f64 = 0.05;

/// Relative regression tolerance for the hot pipeline phases — state
/// assignment, reachability and verification — each gated on its own.
/// `assign_s` dominates the sequencers and `reach_s`/`verify_s` the
/// scale family, so a >20% slowdown in any of them fails even when the
/// 10%+50ms total gate would absorb it.
const CHECK_PHASE_RELATIVE: f64 = 0.20;

/// Absolute grace for the phase gates (scheduler jitter on short runs).
const CHECK_PHASE_ABSOLUTE_S: f64 = 0.02;

/// Phases gated per benchmark with the 20%+20ms rule.
const CHECKED_PHASES: &[&str] = &["assign_s", "reach_s", "verify_s"];

/// Seed of the fuzz-coverage comparison (the CI campaign seed).
const FUZZ_COVERAGE_SEED: u64 = 0xDAC94;

/// Case budget of the fuzz-coverage comparison. At this budget the
/// coverage-guided campaign must clear the reproduction's ≥2× gate over
/// fresh-only generation.
const FUZZ_COVERAGE_ITERS: u64 = 256;

fn usage() -> ! {
    eprintln!(
        "usage: repro_pipeline [--threads N] [--out PATH] [--markdown] [--smoke] [--check BASELINE]"
    );
    std::process::exit(2);
}

fn main() {
    let mut threads = None;
    let mut out_path = None;
    let mut markdown = false;
    let mut smoke = false;
    let mut check_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("error: --threads requires a value");
                    usage()
                });
                threads = Some(v.parse::<usize>().map(|n| n.max(1)).unwrap_or_else(|_| {
                    eprintln!("error: --threads takes a positive integer, got `{v}`");
                    usage()
                }));
            }
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("error: --out requires a path");
                    usage()
                }));
            }
            "--check" => {
                check_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("error: --check requires a baseline path");
                    usage()
                }));
            }
            "--markdown" => markdown = true,
            "--smoke" => smoke = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage()
            }
        }
    }
    let threads = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()).max(4));
    let out_path = out_path.unwrap_or_else(|| "BENCH_pipeline.json".to_string());

    let mut benchmarks = suite::all();
    if smoke {
        benchmarks.retain(|b| SMOKE_SET.contains(&b.name));
        assert_eq!(benchmarks.len(), SMOKE_SET.len(), "smoke subset missing from suite");
    }
    let sequential = SuiteRun::sweep("sequential", &benchmarks, 1);
    let parallel = SuiteRun::sweep(&format!("parallel-{threads}"), &benchmarks, threads);
    let counters = counters_sweep(&benchmarks);
    let cache = cache_sweep(&benchmarks);
    let mut scale_members = scale::all();
    if smoke {
        // The widest members dominate the sweep; CI gates on the smallest.
        scale_members.retain(|m| m.width <= 13);
    }
    let scale_timings = scale_sweep(&scale_members);
    let fuzz_coverage = fuzz_coverage_sweep(FUZZ_COVERAGE_SEED, FUZZ_COVERAGE_ITERS);

    let mut table = Table::new(&[
        "example", "states", "reach ms", "regions ms", "cover ms", "assign ms", "verify ms",
        "total ms", "verified",
    ]);
    let ms = |s: f64| format!("{:.2}", s * 1e3);
    for t in &sequential.timings {
        table.row(&[
            t.name.clone(),
            t.states.to_string(),
            ms(t.reach),
            ms(t.regions),
            ms(t.cover),
            ms(t.assign),
            ms(t.verify),
            ms(t.total()),
            if t.verified { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("Pipeline phase profile (sequential) — {} benchmarks", benchmarks.len());
    println!();
    if markdown {
        print!("{}", table.to_markdown());
    } else {
        print!("{}", table.to_text());
    }
    println!();
    println!(
        "sequential wall: {:.1} ms   parallel-{} wall: {:.1} ms   speedup: {:.2}x",
        sequential.wall * 1e3,
        threads,
        parallel.wall * 1e3,
        sequential.wall / parallel.wall
    );
    let (cold_total, warm_total): (f64, f64) =
        cache.iter().fold((0.0, 0.0), |(c, w), t| (c + t.cold, w + t.warm));
    println!(
        "artifact cache: cold {:.1} ms   warm {:.1} ms   speedup: {:.2}x",
        cold_total * 1e3,
        warm_total * 1e3,
        cold_total / warm_total.max(1e-6)
    );
    for t in &cache {
        assert!(t.identical, "{}: warm cached run diverged from cold", t.name);
    }
    for s in &scale_timings {
        println!(
            "scale {}: {} spec states, verify full {:.1} ms ({} states) -> reduced {:.1} ms ({} states)",
            s.name,
            s.spec_states,
            s.verify_full * 1e3,
            s.explored_full,
            s.verify_reduced * 1e3,
            s.explored_reduced
        );
        assert!(s.verified, "{}: scale member must verify hazard-free", s.name);
    }
    println!(
        "fuzz coverage @ {} cases: campaign {} edges vs fresh {} edges ({:.2}x, corpus {})",
        fuzz_coverage.iters,
        fuzz_coverage.campaign_edges,
        fuzz_coverage.fresh_edges,
        fuzz_coverage.ratio(),
        fuzz_coverage.corpus_size
    );
    assert!(
        fuzz_coverage.ratio() >= 2.0,
        "coverage-guided campaign must reach at least 2x the fresh-only edges, got {:.2}x",
        fuzz_coverage.ratio()
    );

    // Every thread count must produce identical results.
    for (s, p) in sequential.timings.iter().zip(&parallel.timings) {
        assert_eq!(s.name, p.name);
        assert_eq!(s.states, p.states, "{}: state count differs across thread counts", s.name);
        assert_eq!(s.verified, p.verified, "{}: verdict differs across thread counts", s.name);
    }
    // The counter pass replays the same pipeline; its structure must agree.
    for (s, c) in sequential.timings.iter().zip(&counters) {
        assert_eq!(s.name, c.name);
        assert_eq!(s.states, c.states, "{}: state count differs in counter pass", s.name);
    }

    // Preserve a before/after view of the state-assignment phase: if the
    // output path already holds a baseline, compare its sequential
    // `assign_s` per benchmark against this run's.
    let before_after: Vec<(String, f64, f64)> = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .map(|old| {
            let old_seq = sequential_benchmarks(&old);
            sequential
                .timings
                .iter()
                .filter_map(|t| {
                    let before = old_seq
                        .iter()
                        .find(|b| b.get("name").and_then(Value::as_str) == Some(&t.name))?
                        .get("assign_s")
                        .and_then(Value::as_f64)?;
                    Some((t.name.clone(), before, t.assign))
                })
                .collect()
        })
        .unwrap_or_default();
    let json = to_json_with_history(
        &[sequential.clone(), parallel],
        &counters,
        &cache,
        &before_after,
        &scale_timings,
        Some(&fuzz_coverage),
    );
    // Round-trip self-validation: the hand-rolled emitter must satisfy
    // the workspace's own parser before anything is written to disk.
    if let Err(e) = json::parse(&json) {
        eprintln!("error: emitted JSON is malformed: {e}");
        std::process::exit(1);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {out_path}");

    if let Some(baseline) = check_path {
        match check_against_baseline(
            &baseline,
            &sequential,
            &counters,
            &scale_timings,
            &fuzz_coverage,
        ) {
            Ok(n) => println!("check: {n} benchmark(s) within tolerance of {baseline}"),
            Err(problems) => {
                for p in &problems {
                    eprintln!("check: {p}");
                }
                eprintln!("check: {} regression(s) against {baseline}", problems.len());
                std::process::exit(1);
            }
        }
    }
}

/// The `benchmarks` array of the `sequential` run in a parsed
/// `BENCH_pipeline.json` document (empty when the shape is unexpected).
fn sequential_benchmarks(doc: &Value) -> Vec<&Value> {
    doc.get("runs")
        .and_then(Value::as_array)
        .and_then(|runs| {
            runs.iter()
                .find(|r| r.get("label").and_then(Value::as_str) == Some("sequential"))
        })
        .and_then(|r| r.get("benchmarks"))
        .and_then(Value::as_array)
        .map(|b| b.iter().collect())
        .unwrap_or_default()
}

/// Compares the sequential run and counter pass against a committed
/// `BENCH_pipeline.json`. Structural columns and pipeline counters are
/// deterministic and must match exactly; wall-clock totals may drift
/// within `CHECK_RELATIVE` + `CHECK_ABSOLUTE_S`. Benchmarks absent from
/// the baseline are skipped, so a smoke run checks against a full one.
fn check_against_baseline(
    path: &str,
    sequential: &SuiteRun,
    counters: &[BenchmarkCounters],
    scale: &[ScaleTimings],
    fuzz: &FuzzCoverage,
) -> Result<usize, Vec<String>> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("reading baseline {path}: {e}"));
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("parsing baseline {path}: {e}"));
    let mut problems = Vec::new();
    let mut checked = 0usize;

    let base_seq = sequential_benchmarks(&doc);
    for t in &sequential.timings {
        let Some(base) = base_seq
            .iter()
            .find(|b| b.get("name").and_then(Value::as_str) == Some(&t.name))
        else {
            continue;
        };
        checked += 1;
        if base.get("states").and_then(Value::as_u64) != Some(t.states as u64) {
            problems.push(format!(
                "{}: states {} != baseline {:?}",
                t.name,
                t.states,
                base.get("states").and_then(Value::as_u64)
            ));
        }
        if base.get("verified").and_then(Value::as_bool) != Some(t.verified) {
            problems.push(format!("{}: verdict differs from baseline", t.name));
        }
        if let Some(base_total) = base.get("total_s").and_then(Value::as_f64) {
            let limit = base_total * (1.0 + CHECK_RELATIVE) + CHECK_ABSOLUTE_S;
            if t.total() > limit {
                problems.push(format!(
                    "{}: total {:.4}s exceeds baseline {:.4}s by more than {:.0}% + {:.0}ms",
                    t.name,
                    t.total(),
                    base_total,
                    CHECK_RELATIVE * 100.0,
                    CHECK_ABSOLUTE_S * 1e3
                ));
            }
        }
        for &phase in CHECKED_PHASES {
            let Some(base_phase) = base.get(phase).and_then(Value::as_f64) else { continue };
            let now = match phase {
                "assign_s" => t.assign,
                "reach_s" => t.reach,
                "verify_s" => t.verify,
                _ => unreachable!("unknown checked phase"),
            };
            let limit = base_phase * (1.0 + CHECK_PHASE_RELATIVE) + CHECK_PHASE_ABSOLUTE_S;
            if now > limit {
                problems.push(format!(
                    "{}: {phase} {now:.4}s exceeds baseline {base_phase:.4}s by more than {:.0}% + {:.0}ms",
                    t.name,
                    CHECK_PHASE_RELATIVE * 100.0,
                    CHECK_PHASE_ABSOLUTE_S * 1e3
                ));
            }
        }
    }

    if let Some(base_counters) = doc.get("counters").and_then(Value::as_array) {
        for c in counters {
            let Some(base) = base_counters
                .iter()
                .find(|b| b.get("name").and_then(Value::as_str) == Some(&c.name))
            else {
                continue;
            };
            for (field, value) in [
                ("states", c.states),
                ("signals_added", c.signals_added),
                ("gates", c.gates),
                ("literals", c.literals),
            ] {
                if base.get(field).and_then(Value::as_u64) != Some(value as u64) {
                    problems.push(format!(
                        "{}: {field} {value} != baseline {:?}",
                        c.name,
                        base.get(field).and_then(Value::as_u64)
                    ));
                }
            }
            let Some(pipeline) = base.get("pipeline") else { continue };
            for (counter, value) in &c.counters {
                if pipeline.get(counter.name()).and_then(Value::as_u64) != Some(*value) {
                    problems.push(format!(
                        "{}: counter {} = {} != baseline {:?}",
                        c.name,
                        counter.name(),
                        value,
                        pipeline.get(counter.name()).and_then(Value::as_u64)
                    ));
                }
            }
        }
    }

    if let Some(base_scale) = doc.get("scale").and_then(Value::as_array) {
        for s in scale {
            let Some(base) = base_scale
                .iter()
                .find(|b| b.get("name").and_then(Value::as_str) == Some(&s.name))
            else {
                continue;
            };
            checked += 1;
            // Deterministic columns match exactly; the reduced
            // exploration size is part of the engine's contract.
            for (field, value) in
                [("spec_states", s.spec_states), ("explored", s.explored_reduced)]
            {
                if base.get(field).and_then(Value::as_u64) != Some(value as u64) {
                    problems.push(format!(
                        "{}: {field} {value} != baseline {:?}",
                        s.name,
                        base.get(field).and_then(Value::as_u64)
                    ));
                }
            }
            if base.get("verified").and_then(Value::as_bool) != Some(s.verified) {
                problems.push(format!("{}: scale verdict differs from baseline", s.name));
            }
            for (phase, now) in [("reach_s", s.reach), ("verify_s", s.verify_reduced)] {
                let Some(base_phase) = base.get(phase).and_then(Value::as_f64) else {
                    continue;
                };
                let limit = base_phase * (1.0 + CHECK_PHASE_RELATIVE) + CHECK_PHASE_ABSOLUTE_S;
                if now > limit {
                    problems.push(format!(
                        "{}: {phase} {now:.4}s exceeds baseline {base_phase:.4}s by more than {:.0}% + {:.0}ms",
                        s.name,
                        CHECK_PHASE_RELATIVE * 100.0,
                        CHECK_PHASE_ABSOLUTE_S * 1e3
                    ));
                }
            }
        }
    }

    // The coverage comparison is a pure function of (seed, iters) — the
    // committed numbers must reproduce exactly.
    if let Some(base_fuzz) = doc.get("fuzz_coverage") {
        let same_budget = base_fuzz.get("seed").and_then(Value::as_u64) == Some(fuzz.seed)
            && base_fuzz.get("iters").and_then(Value::as_u64) == Some(fuzz.iters);
        if same_budget {
            checked += 1;
            for (field, value) in [
                ("campaign_edges", fuzz.campaign_edges),
                ("fresh_edges", fuzz.fresh_edges),
                ("corpus_size", fuzz.corpus_size),
            ] {
                if base_fuzz.get(field).and_then(Value::as_u64) != Some(value as u64) {
                    problems.push(format!(
                        "fuzz_coverage: {field} {value} != baseline {:?}",
                        base_fuzz.get(field).and_then(Value::as_u64)
                    ));
                }
            }
        }
    }

    if problems.is_empty() {
        Ok(checked)
    } else {
        Err(problems)
    }
}
