//! Regenerates Table 1 of the paper: MC-reduction (state-signal
//! insertion) on the reconstructed benchmark suite.
//!
//! Columns mirror the paper's: circuit name, inputs, outputs, and the
//! number of inserted state signals; we add the paper's reported count and
//! the wall-clock time for comparison (the paper reports "within a
//! 5-minute timeout on a DEC 5000").
//!
//! Pass `--markdown` for a GitHub-flavoured table (used by
//! EXPERIMENTS.md) and `--thorough` for a wider insertion search (slower,
//! finds smaller insertion counts on the deep sequencers).

use std::time::Instant;

use simc_bench::report::Table;
use simc_benchmarks::suite;
use simc_mc::assign::{reduce_to_mc, ReduceOptions};
use simc_mc::synth::{synthesize, Target};
use simc_mc::McCheck;
use simc_netlist::{verify, VerifyOptions};

fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    let thorough = std::env::args().any(|a| a == "--thorough");
    let options = if thorough {
        ReduceOptions { max_candidates: 96, beam_width: 200, branch: 48, ..ReduceOptions::default() }
    } else {
        ReduceOptions::default()
    };
    let mut table = Table::new(&[
        "example", "in", "out", "added (paper)", "added (ours)", "states", "time ms", "verified",
    ]);
    for b in suite::all() {
        let sg = match b.stg.to_state_graph() {
            Ok(sg) => sg,
            Err(e) => {
                table.row(&[
                    b.name.to_string(),
                    b.paper_inputs.to_string(),
                    b.paper_outputs.to_string(),
                    b.paper_added.to_string(),
                    format!("error: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
        };
        let start = Instant::now();
        let outcome = reduce_to_mc(&sg, options);
        let elapsed = start.elapsed().as_millis();
        match outcome {
            Ok(result) => {
                // Close the loop: the reduced graph must satisfy MC and
                // synthesize to a verified hazard-free implementation.
                let satisfied = McCheck::new(&result.sg).report().satisfied();
                let verified = satisfied
                    && synthesize(&result.sg, Target::CElement)
                        .ok()
                        .and_then(|imp| imp.to_netlist().ok())
                        .and_then(|nl| verify(&nl, &result.sg, VerifyOptions::default()).ok())
                        .is_some_and(|r| r.is_ok());
                table.row(&[
                    b.name.to_string(),
                    b.paper_inputs.to_string(),
                    b.paper_outputs.to_string(),
                    b.paper_added.to_string(),
                    result.added.to_string(),
                    format!("{} -> {}", sg.state_count(), result.sg.state_count()),
                    elapsed.to_string(),
                    if verified { "yes" } else { "NO" }.to_string(),
                ]);
            }
            Err(e) => {
                table.row(&[
                    b.name.to_string(),
                    b.paper_inputs.to_string(),
                    b.paper_outputs.to_string(),
                    b.paper_added.to_string(),
                    format!("failed: {e}"),
                    sg.state_count().to_string(),
                    elapsed.to_string(),
                    "-".into(),
                ]);
            }
        }
    }
    println!("Table 1 — results of MC-reduction (paper: DAC'94, Section VII)");
    println!();
    if markdown {
        print!("{}", table.to_markdown());
    } else {
        print!("{}", table.to_text());
    }
}
