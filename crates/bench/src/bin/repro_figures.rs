//! Regenerates the analysis facts the paper's figures annotate:
//!
//! * Figure 1's marked regions ER(+d1) and QR(+d1), the minimal state,
//!   the trigger `+a` and its non-persistency;
//! * Figure 2's implementation structures, as synthesized netlists for
//!   both targets on the C-element spec;
//! * Figure 3's MC satisfaction and the degenerate `d = x̄` connection;
//! * Figure 4's twin-coded states and region structure.

use simc_benchmarks::figures;
use simc_mc::synth::{synthesize, Target};
use simc_mc::McCheck;
use simc_sg::{Dir, Transition};

fn main() {
    figure1();
    figure2();
    figure3();
    figure4();
}

fn figure1() {
    println!("== Figure 1 ==");
    let sg = figures::figure1();
    let regions = sg.regions();
    let d = sg.signal_by_name("d").expect("signal d");
    let a = sg.signal_by_name("a").expect("signal a");
    let er = regions.ers_of_transition(Transition::rise(d))[0];
    let er_codes: Vec<String> = regions
        .er(er)
        .states()
        .iter()
        .map(|&s| sg.starred_code(s))
        .collect();
    println!("ER(+d,1) = {{{}}}", er_codes.join(", "));
    let qr_codes: Vec<String> =
        regions.qr(er).iter().map(|&s| sg.starred_code(s)).collect();
    println!("QR(+d,1) = {{{}}}", qr_codes.join(", "));
    let mins = regions.minimal_states(&sg, er);
    println!(
        "minimal state: {} (unique entry: {})",
        sg.starred_code(mins[0]),
        regions.has_unique_entry(&sg, er)
    );
    let trigs: Vec<String> = regions
        .triggers(&sg, er)
        .into_iter()
        .map(|t| sg.transition_name(t))
        .collect();
    println!(
        "triggers: {}; a ordered with ER(+d,1): {} -> +a is {}",
        trigs.join(", "),
        regions.is_ordered(&sg, er, a),
        if regions.is_persistent_er(&sg, er) { "persistent" } else { "non-persistent" },
    );
    println!();
}

fn figure2() {
    println!("== Figure 2: standard implementation structures ==");
    let sg = figures::c_element();
    for (target, name) in [
        (Target::CElement, "standard C-implementation"),
        (Target::RsLatch, "standard RS-implementation"),
    ] {
        let imp = synthesize(&sg, target).expect("C-element synthesizes");
        let nl = imp.to_netlist().expect("netlist builds");
        println!("{name} of the C-element spec: {}", nl.stats());
    }
    println!();
}

fn figure3() {
    println!("== Figure 3 ==");
    let sg = figures::figure3();
    let check = McCheck::new(&sg);
    let report = check.report();
    println!(
        "MC requirement satisfied: {} ({} functions)",
        report.satisfied(),
        report.entries().len()
    );
    print!("{}", report.render(&sg));
    println!();
}

fn figure4() {
    println!("== Figure 4 ==");
    let sg = figures::figure4();
    let regions = sg.regions();
    let b = sg.signal_by_name("b").expect("signal b");
    for (i, er) in regions
        .ers_of_transition(Transition::rise(b))
        .into_iter()
        .enumerate()
    {
        let codes: Vec<String> = regions
            .er(er)
            .states()
            .iter()
            .map(|&s| sg.starred_code(s))
            .collect();
        println!("ER(+b,{}) = {{{}}}", i + 1, codes.join(", "));
    }
    // The twin 1100 states.
    let twins: Vec<String> = sg
        .state_ids()
        .filter(|&s| sg.code(s).bits() == 0b0011) // a=1, b=1 (bit order: a is bit 0)
        .map(|s| sg.starred_code(s))
        .collect();
    println!("states sharing code 1100: {{{}}}", twins.join(", "));
    let check = McCheck::new(&sg);
    let report = check.report();
    println!("MC satisfied: {}", report.satisfied());
    let _ = Dir::Rise;
}
