//! Regenerates Example 2 of the paper (Figure 4).
//!
//! Figure 4 is *persistent*, so the baseline's correctness conditions all
//! pass and it happily produces `t = c'd; b = a + t`. But cube `a`
//! (covering ER(+b,1)) also covers state 1001 inside ER(+b,2): entering
//! ER(+b,2) starts gate `t` switching, and if `a` fires first the OR gate
//! rises without acknowledging `t` — a hazard. The MC requirement
//! recognizes the situation statically; our speed-independence verifier
//! confirms it dynamically with a witness trace; and one inserted signal
//! removes it.

use simc_benchmarks::figures;
use simc_mc::assign::{reduce_to_mc, ReduceOptions};
use simc_mc::baseline::synthesize_baseline;
use simc_mc::synth::{synthesize, Target};
use simc_mc::McCheck;
use simc_netlist::{verify, VerifyOptions};

fn main() {
    let fig4 = figures::figure4();
    println!("== Figure 4: persistent SG, inputs a,c,d, output b ==");
    let regions = fig4.regions();
    println!(
        "{} states; output persistent: {}; CSC: {}",
        fig4.state_count(),
        regions.is_output_persistent(&fig4),
        fig4.analysis().has_csc(),
    );
    println!();

    println!("== Baseline implementation (accepted by the method of [2]) ==");
    let baseline =
        synthesize_baseline(&fig4, Target::CElement).expect("baseline synthesizes figure 4");
    print!("{}", baseline.equations());
    println!();

    println!("== Static detection: the MC requirement ==");
    print!("{}", McCheck::new(&fig4).report().render(&fig4));
    println!();

    println!("== Dynamic confirmation: speed-independence verification ==");
    let nl = baseline.to_netlist().expect("netlist builds");
    let report = verify(&nl, &fig4, VerifyOptions::default()).expect("verification runs");
    println!(
        "baseline: {} ({} violations, {} states explored)",
        if report.is_ok() { "hazard-free" } else { "HAZARDOUS" },
        report.violations.len(),
        report.explored,
    );
    for v in report.hazards().take(2) {
        println!("  {}", report.describe(&nl, &fig4, v));
    }
    println!();

    println!("== Repair: \"MC … can remove the hazard by adding one signal\" ==");
    let reduced = reduce_to_mc(&fig4, ReduceOptions::default()).expect("figure 4 reduces");
    println!("inserted {} signal(s):", reduced.added);
    for line in &reduced.log {
        println!("  {line}");
    }
    let mc_impl = synthesize(&reduced.sg, Target::CElement).expect("reduced graph synthesizes");
    print!("{}", mc_impl.equations());
    let nl2 = mc_impl.to_netlist().expect("netlist builds");
    let report2 = verify(&nl2, &reduced.sg, VerifyOptions::default()).expect("verification runs");
    println!(
        "MC implementation: {} ({} states explored)",
        if report2.is_ok() { "hazard-free" } else { "HAZARDOUS" },
        report2.explored,
    );
}
