use simc_mc::assign::{reduce_to_mc, ReduceOptions};
use std::time::Instant;
fn main() {
    for name in ["ganesh_8", "berkel3", "berkel2"] {
        let b = simc_benchmarks::suite::all().into_iter().find(|b| b.name == name).unwrap();
        let sg = b.stg.to_state_graph().unwrap();
        let opts = ReduceOptions { max_signals: 6, max_candidates: 64, beam_width: 64, branch: 16, ..ReduceOptions::default() };
        let t = Instant::now();
        match reduce_to_mc(&sg, opts) {
            Ok(r) => println!("{name}: added={} in {:?}", r.added, t.elapsed()),
            Err(e) => println!("{name}: ERR {e} in {:?}", t.elapsed()),
        }
    }
}
