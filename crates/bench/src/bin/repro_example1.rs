//! Regenerates Example 1 of the paper (Figures 1 and 3, equations (1)
//! and (2)).
//!
//! * On Figure 1, the Beerel–Meng-style baseline needs two cubes for
//!   `Sd` (ER(+d) has no single-cube cover) and its AND gates go
//!   unacknowledged — the gate-level implementation is hazardous.
//! * The MC requirement pinpoints the violation; inserting one state
//!   signal (our search reproduces the paper's `x`) yields Figure 3,
//!   whose standard C-implementation is a single cube per region and
//!   verifies hazard-free — at essentially the same area.

use simc_bench::report::Table;
use simc_benchmarks::figures;
use simc_mc::assign::{reduce_to_mc, ReduceOptions};
use simc_mc::baseline::synthesize_baseline;
use simc_mc::complex::synthesize_complex;
use simc_mc::synth::{synthesize, Target};
use simc_mc::McCheck;
use simc_netlist::{verify, VerifyOptions};

fn main() {
    let fig1 = figures::figure1();
    println!("== Figure 1: the specification ==");
    println!(
        "{} states, {} signals; output semi-modular: {}",
        fig1.state_count(),
        fig1.signal_count(),
        fig1.analysis().is_output_semimodular()
    );
    println!();

    println!("== Baseline (Beerel-Meng style): equations (1) ==");
    let baseline =
        synthesize_baseline(&fig1, Target::CElement).expect("baseline synthesizes figure 1");
    print!("{}", baseline.equations());
    let nl = baseline.to_netlist().expect("netlist builds");
    let report = verify(&nl, &fig1, VerifyOptions::default()).expect("verification runs");
    println!(
        "baseline verification: {} ({} hazards among {} violations, {} states explored)",
        if report.is_ok() { "hazard-free" } else { "HAZARDOUS" },
        report.hazards().count(),
        report.violations.len(),
        report.explored,
    );
    if let Some(v) = report.hazards().next() {
        println!("first hazard: {}", report.describe(&nl, &fig1, v));
    }
    println!();

    println!("== MC check on figure 1 ==");
    print!("{}", McCheck::new(&fig1).report().render(&fig1));
    println!();

    println!("== MC-reduction (the paper inserts one signal x) ==");
    let reduced = reduce_to_mc(&fig1, ReduceOptions::default()).expect("figure 1 reduces");
    println!("inserted {} signal(s):", reduced.added);
    for line in &reduced.log {
        println!("  {line}");
    }
    println!();

    println!("== MC implementation of the reduced graph: equations (2) ==");
    let mc_impl =
        synthesize(&reduced.sg, Target::CElement).expect("reduced graph synthesizes");
    print!("{}", mc_impl.equations());
    let nl2 = mc_impl.to_netlist().expect("netlist builds");
    let report2 = verify(&nl2, &reduced.sg, VerifyOptions::default()).expect("verification runs");
    println!(
        "MC verification: {} ({} states explored)",
        if report2.is_ok() { "hazard-free" } else { "HAZARDOUS" },
        report2.explored,
    );
    println!();

    println!("== The paper's own Figure 3 (for reference) ==");
    let fig3 = figures::figure3();
    let fig3_impl = synthesize(&fig3, Target::CElement).expect("figure 3 synthesizes");
    print!("{}", fig3_impl.equations());
    println!();

    println!("== Area comparison (\"the reduction to MC form adds nearly nothing\") ==");
    let mut table = Table::new(&["implementation", "product terms", "literals", "gates"]);
    for (name, imp) in [
        ("baseline on fig. 1 (hazardous)", &baseline),
        ("MC on reduced graph", &mc_impl),
        ("MC on paper's fig. 3", &fig3_impl),
    ] {
        let stats = imp.to_netlist().expect("netlist builds").stats();
        table.row(&[
            name.to_string(),
            imp.cube_count().to_string(),
            imp.literal_count().to_string(),
            format!("{stats}"),
        ]);
    }
    // The contrast the paper's introduction draws: figure 1 satisfies CSC,
    // so the *complex gate* style implements it directly — with gates no
    // standard library provides.
    let complex = synthesize_complex(&fig1).expect("figure 1 has CSC");
    let report = verify(&complex, &fig1, VerifyOptions::default()).expect("runs");
    table.row(&[
        format!(
            "complex gates on fig. 1 ({}, non-library)",
            if report.is_ok() { "hazard-free" } else { "hazardous" }
        ),
        "-".into(),
        "-".into(),
        format!("{}", complex.stats()),
    ]);
    print!("{}", table.to_text());
}
