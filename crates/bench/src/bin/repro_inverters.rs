//! Quantifies the paper's "justification of input inversions" (Section
//! III): the `C2` implementation (input inversions as separate inverter
//! gates) is hazardous under unbounded delays, but behaves whenever
//! `d_inv^max < D_sn^min`. We sweep the inverter delay against a fixed
//! signal-network delay and report the first observable failure across
//! seeds.

use simc_benchmarks::figures;
use simc_mc::synth::{synthesize, Target};
use simc_netlist::{timed_walk, verify, Delays, GateKind, TimedOptions, VerifyOptions};

fn main() {
    let sg = figures::figure3();
    let implementation = synthesize(&sg, Target::CElement).expect("figure 3 synthesizes");
    let c2 = implementation
        .to_netlist_with_explicit_inverters()
        .expect("C2 netlist builds");
    let inverters = c2
        .gate_ids()
        .filter(|&g| matches!(c2.gate_kind(g), GateKind::Not))
        .count();
    println!(
        "C2 of figure 3: {} gates, {} explicit inverters",
        c2.gate_count(),
        inverters
    );
    let verdict = verify(&c2, &sg, VerifyOptions::default()).expect("verification runs");
    println!(
        "unbounded delays (exhaustive): {}",
        if verdict.is_ok() { "hazard-free" } else { "HAZARDOUS (as expected)" }
    );
    // Signal network delay: AND + OR + latch at 4 units each → D_sn = 12.
    println!("\nper-gate delay 4 (D_sn ≈ 12); sweeping inverter delay:");
    for inv_delay in [1u64, 2, 4, 8, 16, 32, 64] {
        let delays = Delays::uniform_with(&c2, 4, |g| {
            matches!(c2.gate_kind(g), GateKind::Not).then_some(inv_delay)
        });
        let mut failure: Option<(u64, String)> = None;
        let mut total_pulses = 0usize;
        for seed in 1..=40 {
            let report = timed_walk(
                &c2,
                &sg,
                &delays,
                TimedOptions { seed, max_events: 100_000, env_delay: (1, 6) },
            )
            .expect("simulation runs");
            total_pulses += report.pulses;
            if let Some(f) = report.failure {
                failure = Some((seed, f));
                break;
            }
        }
        match failure {
            Some((seed, f)) => println!("  d_inv = {inv_delay:>3}: FAILS (seed {seed}): {f}"),
            None => println!(
                "  d_inv = {inv_delay:>3}: no spec violation, {total_pulses} runt pulse(s)                  over 40 seeds x 100k events"
            ),
        }
    }
}
