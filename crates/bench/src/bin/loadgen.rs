//! Replays the benchmark suite against a live `simc serve` daemon at
//! high concurrency and records the results as the `serve` section of
//! `BENCH_pipeline.json`.
//!
//! The driver spawns the real binary (`simc serve --port 0`), learns the
//! ephemeral address from the daemon's announcement line, and runs two
//! passes over the suite's `.sg` specifications:
//!
//! * a **cold** pass issuing every benchmark `--dup` times concurrently
//!   — duplicates arrive while the leader is still computing, so the
//!   daemon's single-flight map must coalesce them
//!   (`serve.inflight_joined > 0`);
//! * a **warm** pass replaying each benchmark once — every pipeline
//!   stage must revive from the shared artifact cache (hit-rate ≥ 0.9).
//!
//! Both gates are hard: the run exits 1 when dedup or the warm cache
//! fails to show up in `/stats`, so CI catches a regressed daemon, not
//! just a slow one. `--contract` adds status-contract probes (malformed
//! spec → 400, expired deadline → 429, unknown route → 404, wrong
//! method → 405) and `--smoke` shrinks the sweep for the CI gate.
//!
//! Usage: `loadgen [--server PATH] [--dup N] [--threads N] [--smoke]
//! [--contract] [--out BENCH_pipeline.json]`

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use simc_benchmarks::suite;
use simc_obs::json::{self, Value};

/// Benchmarks replayed under `--smoke`: the same subset as the
/// `repro_pipeline` CI gate, so the daemon smoke exercises both a
/// trivial spec and the insertion-heavy sequencers.
const SMOKE_SET: &[&str] = &["duplicator", "berkel3", "ganesh_8"];

/// Client-side socket timeout — a hung daemon fails the run instead of
/// wedging CI.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// Minimum cache hit-rate the warm pass must reach.
const WARM_HIT_RATE_FLOOR: f64 = 0.9;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--server PATH] [--dup N] [--threads N] [--smoke] [--contract] \
         [--out BENCH_pipeline.json]"
    );
    std::process::exit(2);
}

/// The spawned daemon plus everything needed to tear it down. Dropping
/// the guard kills the child, so a panicking assertion never leaks a
/// listening process into CI.
struct Daemon {
    child: Child,
    addr: String,
    cache_dir: PathBuf,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.cache_dir);
    }
}

impl Daemon {
    /// Spawns `server serve --port 0` with a scratch disk cache and
    /// parses the announcement line for the bound address.
    fn spawn(server: &str, threads: usize) -> Daemon {
        let cache_dir = std::env::temp_dir()
            .join(format!("simc-loadgen-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&cache_dir).ok();
        let mut child = Command::new(server)
            .args([
                "serve",
                "--port",
                "0",
                "--threads",
                &threads.to_string(),
                "--cache-dir",
            ])
            .arg(&cache_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .unwrap_or_else(|e| {
                eprintln!("error: spawning `{server} serve`: {e}");
                std::process::exit(1);
            });
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("daemon announcement");
        let Some(addr) = line.trim().strip_prefix("listening on http://") else {
            let _ = child.kill();
            eprintln!("error: unexpected daemon announcement `{}`", line.trim());
            std::process::exit(1);
        };
        Daemon { addr: addr.to_string(), child, cache_dir }
    }

    /// One HTTP exchange: returns `(status, body)`.
    fn request(&self, method: &str, path: &str, headers: &[(&str, &str)], body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        stream.set_read_timeout(Some(CLIENT_TIMEOUT)).expect("read timeout");
        stream.set_write_timeout(Some(CLIENT_TIMEOUT)).expect("write timeout");
        let mut raw = format!("{method} {path} HTTP/1.1\r\nHost: loadgen\r\n");
        for (name, value) in headers {
            raw.push_str(&format!("{name}: {value}\r\n"));
        }
        raw.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
        stream.write_all(raw.as_bytes()).expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let status = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad response `{response}`"));
        let body = response.split_once("\r\n\r\n").map_or("", |(_, b)| b).to_string();
        (status, body)
    }

    fn post(&self, path: &str, body: &str) -> (u16, String) {
        self.request("POST", path, &[], body)
    }

    /// Snapshot of the daemon's `/stats` counters.
    fn stats(&self) -> Value {
        let (status, body) = self.request("GET", "/stats", &[], "");
        assert_eq!(status, 200, "/stats failed: {body}");
        json::parse(&body).expect("stats JSON parses")
    }

    /// Asks the daemon to drain and waits for a clean exit.
    fn shutdown(mut self) {
        let (status, body) = self.post("/shutdown", "");
        assert_eq!(status, 200, "shutdown refused: {body}");
        let status = self.child.wait().expect("daemon exits");
        assert!(status.success(), "daemon exit status: {status:?}");
        let _ = std::fs::remove_dir_all(&self.cache_dir);
        // The child is already reaped; keep Drop from killing a dead pid.
        std::mem::forget(self);
    }
}

/// One counter out of a `/stats` snapshot (0 when absent).
fn counter(stats: &Value, name: &str) -> u64 {
    stats
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// Replaces any previous `serve` section and inserts `serve` (already
/// rendered as a JSON object) as the last section of the document.
fn splice_serve(text: &str, serve: &str) -> String {
    // The section is always spliced last, so stripping means truncating
    // at its lead-in and restoring the closing brace.
    let base = match text.find(",\n  \"serve\": {") {
        Some(i) => format!("{}\n}}\n", &text[..i]),
        None => text.to_string(),
    };
    let trimmed = base.trim_end();
    let body = trimmed.strip_suffix('}').expect("document ends with `}`").trim_end();
    format!("{body},\n  \"serve\": {serve}\n}}\n")
}

fn main() {
    let mut server = "./target/release/simc".to_string();
    let mut dup = 4usize;
    let mut threads = 0usize;
    let mut smoke = false;
    let mut contract = false;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                usage()
            })
        };
        match a.as_str() {
            "--server" => server = value("--server"),
            "--out" => out_path = Some(value("--out")),
            "--dup" => {
                let v = value("--dup");
                dup = v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("error: --dup takes a positive integer, got `{v}`");
                    usage()
                });
            }
            "--threads" => {
                let v = value("--threads");
                threads = v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("error: --threads takes a positive integer, got `{v}`");
                    usage()
                });
            }
            "--smoke" => smoke = true,
            "--contract" => contract = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage()
            }
        }
    }
    if smoke {
        dup = dup.min(2);
    }
    // The pool must at least fit one full duplicate wave, or the queue —
    // not the flight map — would serialize the duplicates.
    if threads == 0 {
        threads = dup.max(4);
    }

    let mut benchmarks = suite::all();
    if smoke {
        benchmarks.retain(|b| SMOKE_SET.contains(&b.name));
        assert_eq!(benchmarks.len(), SMOKE_SET.len(), "smoke subset missing from suite");
    }
    let specs: Vec<(String, String)> = benchmarks
        .iter()
        .map(|b| {
            let sg = b.stg.to_state_graph().expect("suite benchmark reaches");
            (b.name.to_string(), simc_sg::write_sg(&sg, b.name))
        })
        .collect();

    let daemon = Daemon::spawn(&server, threads);
    println!("daemon at http://{} ({} workers)", daemon.addr, threads);

    if contract {
        let (status, body) = daemon.post("/v1/verify", ".model x\nnot a spec\n");
        assert_eq!(status, 400, "malformed spec: {body}");
        let (status, body) =
            daemon.request("POST", "/v1/verify", &[("X-Simc-Deadline-Ms", "0")], &specs[0].1);
        assert_eq!(status, 429, "expired deadline: {body}");
        let (status, _) = daemon.post("/v1/nonsense", "");
        assert_eq!(status, 404, "unknown route");
        let (status, _) = daemon.request("GET", "/v1/synth", &[], "");
        assert_eq!(status, 405, "wrong method");
        println!("contract: 400/429/404/405 all answered as specified");
    }

    let before = daemon.stats();

    // Cold pass: every benchmark `dup` times, duplicates concurrent.
    let cold_start = Instant::now();
    for (name, spec) in &specs {
        let responses: Vec<(u16, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..dup).map(|_| scope.spawn(|| daemon.post("/v1/verify", spec))).collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        for (status, body) in &responses {
            assert_eq!(*status, 200, "{name} cold: {body}");
        }
    }
    let cold_s = cold_start.elapsed().as_secs_f64();
    let after_cold = daemon.stats();

    // Warm pass: each benchmark once — everything revives from cache.
    let warm_start = Instant::now();
    for (name, spec) in &specs {
        let (status, body) = daemon.post("/v1/verify", spec);
        assert_eq!(status, 200, "{name} warm: {body}");
    }
    let warm_s = warm_start.elapsed().as_secs_f64();
    let after_warm = daemon.stats();

    let requests = counter(&after_warm, "serve.requests") - counter(&before, "serve.requests");
    let computations =
        counter(&after_warm, "serve.computations") - counter(&before, "serve.computations");
    let joined = counter(&after_cold, "serve.inflight_joined")
        - counter(&before, "serve.inflight_joined");
    let warm_hits = counter(&after_warm, "cache.hits") - counter(&after_cold, "cache.hits");
    let warm_misses =
        counter(&after_warm, "cache.misses") - counter(&after_cold, "cache.misses");
    let warm_hit_rate = warm_hits as f64 / (warm_hits + warm_misses).max(1) as f64;

    println!(
        "cold: {} benchmark(s) x {dup} in {:.1} ms   warm: {:.1} ms ({:.2}x)",
        specs.len(),
        cold_s * 1e3,
        warm_s * 1e3,
        cold_s / warm_s.max(1e-9)
    );
    println!(
        "dedup: {computations} computation(s) for {requests} request(s), {joined} joined in flight"
    );
    println!("warm cache: {warm_hits} hit(s), {warm_misses} miss(es) ({warm_hit_rate:.3})");

    // The two acceptance gates, hard-failed so CI notices.
    assert!(joined > 0, "no duplicate request ever joined an in-flight computation");
    assert!(
        warm_hit_rate >= WARM_HIT_RATE_FLOOR,
        "warm pass hit-rate {warm_hit_rate:.3} below {WARM_HIT_RATE_FLOOR}"
    );

    daemon.shutdown();
    println!("daemon drained and exited cleanly");

    let serve = format!(
        "{{\n    \"mode\": \"{}\",\n    \"workers\": {threads},\n    \"benchmarks\": {},\n    \
         \"dup\": {dup},\n    \"requests\": {requests},\n    \"computations\": {computations},\n    \
         \"inflight_joined\": {joined},\n    \"cold_s\": {cold_s:.6},\n    \"warm_s\": {warm_s:.6},\n    \
         \"warm_hits\": {warm_hits},\n    \"warm_misses\": {warm_misses},\n    \
         \"warm_hit_rate\": {warm_hit_rate:.4}\n  }}",
        if smoke { "smoke" } else { "full" },
        specs.len(),
    );
    if let Some(out_path) = out_path {
        let text = std::fs::read_to_string(&out_path)
            .unwrap_or_else(|e| panic!("reading {out_path}: {e}"));
        let spliced = splice_serve(&text, &serve);
        // The spliced document must still satisfy the workspace parser.
        json::parse(&spliced).expect("spliced BENCH JSON parses");
        std::fs::write(&out_path, &spliced).expect("write spliced BENCH JSON");
        println!("spliced serve section into {out_path}");
    } else {
        println!("serve section (pass --out to record):\n{serve}");
    }
}
