//! Wall-clock profiling of the synthesis pipeline.
//!
//! [`profile_benchmark`] runs the full pipeline — reachability, region
//! analysis, cover search, MC-reduction, synthesis + verification — on
//! one benchmark and records the wall-clock time of each phase via
//! `simc_obs` timing spans (the guard's `finish()` returns the elapsed
//! duration, so attribution stays exact even when benchmarks run
//! concurrently). [`counters_benchmark`] re-runs the pipeline with the
//! observability counters on — sequentially, with a reset per benchmark,
//! since the counter state is process-global — and records the paper's
//! structural columns (states, inserted signals, gates, literals)
//! alongside the full counter report. The `repro_pipeline` binary sweeps
//! the suite with both and emits `BENCH_pipeline.json` (hand-rolled JSON
//! — the workspace builds with no serialization dependency).

use std::fmt::Write as _;
use std::time::Instant;

use simc_benchmarks::suite::Benchmark;
use simc_mc::assign::{reduce_to_mc, ReduceOptions};
use simc_mc::synth::Target;
use simc_mc::{McCheck, ParallelSynth};
use simc_netlist::{verify, VerifyOptions};

/// Wall-clock seconds per pipeline phase for one benchmark.
#[derive(Debug, Clone)]
pub struct PhaseTimings {
    /// Benchmark name.
    pub name: String,
    /// State count of the reduced state graph.
    pub states: usize,
    /// STG reachability: `.g` net → state graph.
    pub reach: f64,
    /// Region analysis of the reduced graph (ER/QR/CFR decomposition).
    pub regions: f64,
    /// MC cover search over every excitation function.
    pub cover: f64,
    /// MC-reduction (state-signal insertion) of the original graph.
    pub assign: f64,
    /// Synthesis to a netlist plus hazard-freedom verification.
    pub verify: f64,
    /// Whether the synthesized netlist verified hazard-free.
    pub verified: bool,
}

impl PhaseTimings {
    /// Total wall-clock seconds across all phases.
    pub fn total(&self) -> f64 {
        self.reach + self.regions + self.cover + self.assign + self.verify
    }
}

/// Runs the full pipeline on one benchmark, timing each phase, using
/// `synth` for the cover search and synthesis.
///
/// # Panics
///
/// Panics if the benchmark's STG fails reachability or MC-reduction —
/// the shipped suite is known-good, so a failure is a regression.
pub fn profile_benchmark(b: &Benchmark, synth: ParallelSynth) -> PhaseTimings {
    // Phase attribution rides on span guards; the guard's `finish()`
    // returns zero with timing off, so switch it on for the profile.
    simc_obs::set_timing(true);

    let span = simc_obs::span("profile_reach");
    let sg = b.stg.to_state_graph().expect("suite benchmark reaches");
    let reach = span.finish().as_secs_f64();

    let span = simc_obs::span("profile_assign");
    let opts = ReduceOptions { threads: synth.threads(), ..ReduceOptions::default() };
    let reduced = reduce_to_mc(&sg, opts).expect("suite benchmark reduces");
    let assign = span.finish().as_secs_f64();

    let span = simc_obs::span("profile_regions");
    let check = McCheck::new(&reduced.sg);
    let regions = span.finish().as_secs_f64();

    let span = simc_obs::span("profile_cover");
    let report = synth.report(&check);
    let cover = span.finish().as_secs_f64();
    assert!(report.satisfied(), "{}: reduced graph must satisfy MC", b.name);

    let span = simc_obs::span("profile_verify");
    let verified = synth
        .synthesize(&reduced.sg, Target::CElement)
        .ok()
        .and_then(|imp| imp.to_netlist().ok())
        .and_then(|nl| verify(&nl, &reduced.sg, VerifyOptions::default()).ok())
        .is_some_and(|r| r.is_ok());
    let verify = span.finish().as_secs_f64();

    PhaseTimings {
        name: b.name.to_string(),
        states: reduced.sg.state_count(),
        reach,
        regions,
        cover,
        assign,
        verify,
        verified,
    }
}

/// One suite sweep: the per-benchmark timings plus the wall-clock of the
/// whole sweep (which differs from the sum when benchmarks themselves run
/// concurrently).
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// Label for the run (e.g. `"sequential"`, `"parallel-8"`).
    pub label: String,
    /// Worker threads used.
    pub threads: usize,
    /// Per-benchmark phase timings, in suite order.
    pub timings: Vec<PhaseTimings>,
    /// Wall-clock seconds for the whole sweep.
    pub wall: f64,
}

impl SuiteRun {
    /// Sweeps `benchmarks`, profiling each. With more than one thread the
    /// benchmarks run concurrently *and* each cover search fans out.
    pub fn sweep(label: &str, benchmarks: &[Benchmark], threads: usize) -> Self {
        let synth = ParallelSynth::new(threads);
        let start = Instant::now();
        let timings =
            simc_mc::parallel_map(benchmarks, threads, |b| profile_benchmark(b, synth));
        let wall = start.elapsed().as_secs_f64();
        SuiteRun { label: label.to_string(), threads, timings, wall }
    }

    /// Sum of per-benchmark totals (CPU-proportional, order-independent).
    pub fn total(&self) -> f64 {
        self.timings.iter().map(PhaseTimings::total).sum()
    }
}

/// Structural results and pipeline counters for one benchmark — the
/// paper-table columns (states, inserted signals, gate/literal counts)
/// plus the full `simc_obs` counter report of the run.
#[derive(Debug, Clone)]
pub struct BenchmarkCounters {
    /// Benchmark name.
    pub name: String,
    /// State count of the reduced state graph.
    pub states: usize,
    /// State signals inserted by MC-reduction.
    pub signals_added: usize,
    /// Gate count of the synthesized netlist (ANDs + ORs + latch rails +
    /// inverters/buffers).
    pub gates: usize,
    /// Total literal count over all cover cubes (the paper's area proxy).
    pub literals: usize,
    /// Every observability counter of the run, in fixed declaration
    /// order (deterministic for a given benchmark).
    pub counters: Vec<(simc_obs::Counter, u64)>,
}

/// Runs the pipeline on one benchmark with observability counters on and
/// collects [`BenchmarkCounters`].
///
/// Resets the process-global counter state first, so call this
/// *sequentially* — concurrent counter passes would blend their numbers.
///
/// # Panics
///
/// Same conditions as [`profile_benchmark`]: the shipped suite is
/// known-good, so reachability or reduction failures are regressions.
pub fn counters_benchmark(b: &Benchmark) -> BenchmarkCounters {
    let was = simc_obs::counters_enabled();
    simc_obs::set_counters(true);
    simc_obs::reset();

    let sg = b.stg.to_state_graph().expect("suite benchmark reaches");
    let reduced =
        reduce_to_mc(&sg, ReduceOptions::default()).expect("suite benchmark reduces");
    let implementation = simc_mc::synth::synthesize(&reduced.sg, Target::CElement)
        .expect("reduced graph synthesizes");
    let netlist = implementation.to_netlist().expect("netlist builds");
    let report = verify(&netlist, &reduced.sg, VerifyOptions::default())
        .expect("verification runs");
    assert!(report.is_ok(), "{}: synthesized netlist must verify", b.name);

    let stats = netlist.stats();
    let obs_report = simc_obs::report();
    simc_obs::set_counters(was);
    BenchmarkCounters {
        name: b.name.to_string(),
        states: reduced.sg.state_count(),
        signals_added: reduced.added,
        gates: stats.and_gates + stats.or_gates + stats.latch_rails + stats.other_gates,
        literals: implementation.literal_count() as usize,
        counters: obs_report.counters,
    }
}

/// Sequential counter pass over `benchmarks` (see [`counters_benchmark`]).
pub fn counters_sweep(benchmarks: &[Benchmark]) -> Vec<BenchmarkCounters> {
    benchmarks.iter().map(counters_benchmark).collect()
}

/// Wall-clock and exploration sizes for one scale-family member: the
/// pre-PR exploration (`verify_full`) against the stubborn-set-reduced
/// one (`verify_reduced`) — the symbolic engine's before/after.
#[derive(Debug, Clone)]
pub struct ScaleTimings {
    /// Benchmark name (`scale-ring-<width>`).
    pub name: String,
    /// Reachable spec states.
    pub spec_states: usize,
    /// STG reachability seconds (arena-based frontier BFS).
    pub reach: f64,
    /// Region analysis + cover search + synthesis seconds.
    pub synth: f64,
    /// Verification seconds with partial-order reduction (the default).
    pub verify_reduced: f64,
    /// Composed states explored under reduction.
    pub explored_reduced: usize,
    /// Verification seconds with reduction disabled.
    pub verify_full: f64,
    /// Composed states explored without reduction.
    pub explored_full: usize,
    /// Both runs verified hazard-free (they must agree).
    pub verified: bool,
}

/// Profiles the committed scale family: synthesizes each member once and
/// verifies it twice — reduced and full — so the JSON records the
/// reduction's effect on the same netlist.
///
/// # Panics
///
/// Panics if a member fails reachability or synthesis, or if the reduced
/// and full verdicts disagree — all are regressions.
pub fn scale_sweep(members: &[simc_benchmarks::scale::ScaleBenchmark]) -> Vec<ScaleTimings> {
    simc_obs::set_timing(true);
    members
        .iter()
        .map(|m| {
            let span = simc_obs::span("scale_reach");
            let sg = m.stg.to_state_graph().expect("scale member reaches");
            let reach = span.finish().as_secs_f64();

            let span = simc_obs::span("scale_synth");
            let netlist = simc_mc::synth::synthesize(&sg, Target::CElement)
                .expect("scale member synthesizes")
                .to_netlist()
                .expect("scale netlist builds");
            let synth = span.finish().as_secs_f64();

            let span = simc_obs::span("scale_verify_reduced");
            let reduced = verify(&netlist, &sg, VerifyOptions::default())
                .expect("reduced verification runs");
            let verify_reduced = span.finish().as_secs_f64();

            let span = simc_obs::span("scale_verify_full");
            let full = verify(
                &netlist,
                &sg,
                VerifyOptions { reduction: false, ..VerifyOptions::default() },
            )
            .expect("full verification runs");
            let verify_full = span.finish().as_secs_f64();

            assert_eq!(
                reduced.is_ok(),
                full.is_ok(),
                "{}: reduced and full verdicts disagree",
                m.name
            );
            ScaleTimings {
                name: m.name.to_string(),
                spec_states: sg.state_count(),
                reach,
                synth,
                verify_reduced,
                explored_reduced: reduced.explored,
                verify_full,
                explored_full: full.explored,
                verified: reduced.is_ok(),
            }
        })
        .collect()
}

/// Cold/warm wall-clock of the cached typed pipeline for one benchmark.
#[derive(Debug, Clone)]
pub struct CacheTimings {
    /// Benchmark name.
    pub name: String,
    /// First run: every stage computed and stored (seconds).
    pub cold: f64,
    /// Second run over the same cache: every artifact revived (seconds).
    pub warm: f64,
    /// Both runs produced byte-identical equations and verdicts.
    pub identical: bool,
}

impl CacheTimings {
    /// Cold-over-warm speedup (∞-safe: warm is floored at 1 µs).
    pub fn speedup(&self) -> f64 {
        self.cold / self.warm.max(1e-6)
    }
}

/// Runs every benchmark twice through [`simc_pipeline::Pipeline`] over a
/// shared in-memory cache and records cold-vs-warm wall-clock — the
/// cache's headline number. Sequential by design: the warm run must find
/// the cold run's artifacts in place.
///
/// # Panics
///
/// Panics if a suite benchmark fails reachability, synthesis or
/// verification — the shipped suite is known-good.
pub fn cache_sweep(benchmarks: &[Benchmark]) -> Vec<CacheTimings> {
    use simc_cache::{Cache, MemCache};
    use simc_pipeline::Pipeline;
    use std::sync::Arc;

    let cache: Arc<dyn Cache> = Arc::new(MemCache::new(64 << 20));
    benchmarks
        .iter()
        .map(|b| {
            let sg = b.stg.to_state_graph().expect("suite benchmark reaches");
            let run = |cache: Arc<dyn Cache>| {
                let start = Instant::now();
                let mut pipeline = Pipeline::from_sg(sg.clone()).with_cache(cache);
                let equations = pipeline
                    .implemented()
                    .expect("suite benchmark synthesizes")
                    .implementation()
                    .equations();
                let ok = pipeline.verified().expect("suite benchmark verifies").is_ok();
                assert!(ok, "{}: synthesized netlist must verify", b.name);
                (start.elapsed().as_secs_f64(), equations)
            };
            let (cold, cold_equations) = run(Arc::clone(&cache));
            let (warm, warm_equations) = run(Arc::clone(&cache));
            CacheTimings {
                name: b.name.to_string(),
                cold,
                warm,
                identical: cold_equations == warm_equations,
            }
        })
        .collect()
}

/// Coverage comparison between a coverage-guided fuzz campaign and
/// fresh-only generation at the same case budget — the campaign engine's
/// headline number (distinct quotiented state-graph edges reached).
#[derive(Debug, Clone)]
pub struct FuzzCoverage {
    /// Master seed both sweeps derive from.
    pub seed: u64,
    /// Case budget both sweeps spend.
    pub iters: u64,
    /// Distinct edges the coverage-guided campaign reached.
    pub campaign_edges: usize,
    /// Distinct edges fresh-only generation reached at the same budget.
    pub fresh_edges: usize,
    /// Corpus entries the campaign accumulated.
    pub corpus_size: usize,
    /// The campaign's per-round coverage curve (cases, edges).
    pub curve: Vec<(u64, usize)>,
    /// Fresh-only generation's curve at the same round boundaries.
    pub fresh_curve: Vec<(u64, usize)>,
}

impl FuzzCoverage {
    /// Campaign-over-fresh edge ratio (the ≥2× reproduction gate).
    pub fn ratio(&self) -> f64 {
        self.campaign_edges as f64 / self.fresh_edges.max(1) as f64
    }
}

/// Runs a coverage-guided campaign (oracles off — only state graphs and
/// signatures are computed) and a fresh-only sweep with the *same* seed
/// and budget, and records the edges each reached. Fully deterministic:
/// both sweeps are pure functions of `(seed, iters)`.
pub fn fuzz_coverage_sweep(seed: u64, iters: u64) -> FuzzCoverage {
    use simc_fuzz::{gen, run_campaign, signature, CampaignConfig, CoverageMap, Rng};

    let config = CampaignConfig { seed, iters, oracles: false, ..CampaignConfig::default() };
    let report = run_campaign(&config).expect("in-memory campaign cannot hit the filesystem");

    // Fresh-only baseline: the campaign's own fresh-case generator,
    // replayed for every index (what the campaign would do with no
    // corpus feedback), merged into its own coverage map.
    let mut fresh = CoverageMap::new();
    let mut fresh_curve = Vec::with_capacity(report.curve.len());
    let mut next_round = report.curve.iter().map(|p| p.cases).peekable();
    for index in 0..iters {
        let mut rng = Rng::for_case(seed, index);
        let gen_cfg = gen::GenConfig {
            signals: rng.range(1, config.max_signals as u64) as usize,
            concurrency: rng.range(0, 100),
            csc_injection: rng.percent(25),
        };
        let recipe = gen::random_recipe(&mut rng, gen_cfg);
        let sg = gen::to_state_graph(&recipe).expect("generated recipes are live and 1-safe");
        fresh.merge(&signature(&sg));
        if next_round.peek() == Some(&(index + 1)) {
            next_round.next();
            fresh_curve.push((index + 1, fresh.len()));
        }
    }

    FuzzCoverage {
        seed,
        iters,
        campaign_edges: report.edges_covered,
        fresh_edges: fresh.len(),
        corpus_size: report.corpus_size,
        curve: report.curve.iter().map(|p| (p.cases, p.edges)).collect(),
        fresh_curve,
    }
}

/// Renders suite runs and the counter pass as a JSON document (the
/// `BENCH_pipeline.json` schema):
///
/// ```text
/// { "runs": [ { label, threads, wall_s, benchmarks: [...] } ],
///   "counters": [ { name, states, signals_added, gates, literals,
///                   pipeline: { "sat.solves": ..., ... } } ],
///   "cache": [ { name, cold_s, warm_s, speedup, identical } ] }
/// ```
///
/// Pass an empty `counters` (or `cache`) slice to omit that section —
/// the timing-only legacy shape has neither.
pub fn to_json(
    runs: &[SuiteRun],
    counters: &[BenchmarkCounters],
    cache: &[CacheTimings],
) -> String {
    to_json_with_history(runs, counters, cache, &[], &[], None)
}

/// [`to_json`] with an optional `assign_before_after` section (one entry
/// per benchmark whose state-assignment time in the baseline being
/// replaced (`before_s`) is compared against this run (`after_s`)), the
/// scale-family sections (`scale` holds the per-member profile and
/// `symbolic_before_after` the full-vs-reduced verification comparison),
/// and the `fuzz_coverage` section comparing coverage-guided campaigns
/// against fresh-only generation.
pub fn to_json_with_history(
    runs: &[SuiteRun],
    counters: &[BenchmarkCounters],
    cache: &[CacheTimings],
    before_after: &[(String, f64, f64)],
    scale: &[ScaleTimings],
    fuzz: Option<&FuzzCoverage>,
) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"label\": {},\n      \"threads\": {},\n      \"wall_s\": {:.6},\n      \"benchmarks\": [\n",
            json_str(&run.label),
            run.threads,
            run.wall
        );
        for (j, t) in run.timings.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{ \"name\": {}, \"states\": {}, \"reach_s\": {:.6}, \"regions_s\": {:.6}, \"cover_s\": {:.6}, \"assign_s\": {:.6}, \"verify_s\": {:.6}, \"total_s\": {:.6}, \"verified\": {} }}{}",
                json_str(&t.name),
                t.states,
                t.reach,
                t.regions,
                t.cover,
                t.assign,
                t.verify,
                t.total(),
                t.verified,
                if j + 1 < run.timings.len() { "," } else { "" }
            );
        }
        let _ = write!(
            out,
            "      ]\n    }}{}\n",
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    out.push_str("  ]");
    if !counters.is_empty() {
        out.push_str(",\n  \"counters\": [\n");
        for (i, c) in counters.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\n      \"name\": {},\n      \"states\": {},\n      \"signals_added\": {},\n      \"gates\": {},\n      \"literals\": {},\n      \"pipeline\": {{\n",
                json_str(&c.name),
                c.states,
                c.signals_added,
                c.gates,
                c.literals
            );
            for (j, (counter, value)) in c.counters.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "        {}: {}{}",
                    json_str(counter.name()),
                    value,
                    if j + 1 < c.counters.len() { "," } else { "" }
                );
            }
            let _ = write!(
                out,
                "      }}\n    }}{}\n",
                if i + 1 < counters.len() { "," } else { "" }
            );
        }
        out.push_str("  ]");
    }
    if !cache.is_empty() {
        out.push_str(",\n  \"cache\": [\n");
        for (i, c) in cache.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{ \"name\": {}, \"cold_s\": {:.6}, \"warm_s\": {:.6}, \"speedup\": {:.2}, \"identical\": {} }}{}",
                json_str(&c.name),
                c.cold,
                c.warm,
                c.speedup(),
                c.identical,
                if i + 1 < cache.len() { "," } else { "" }
            );
        }
        out.push_str("  ]");
    }
    if !before_after.is_empty() {
        out.push_str(",\n  \"assign_before_after\": [\n");
        for (i, (name, before, after)) in before_after.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{ \"name\": {}, \"before_s\": {:.6}, \"after_s\": {:.6}, \"speedup\": {:.2} }}{}",
                json_str(name),
                before,
                after,
                before / after.max(1e-9),
                if i + 1 < before_after.len() { "," } else { "" }
            );
        }
        out.push_str("  ]");
    }
    if !scale.is_empty() {
        out.push_str(",\n  \"scale\": [\n");
        for (i, s) in scale.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{ \"name\": {}, \"spec_states\": {}, \"reach_s\": {:.6}, \"synth_s\": {:.6}, \"verify_s\": {:.6}, \"explored\": {}, \"verified\": {} }}{}",
                json_str(&s.name),
                s.spec_states,
                s.reach,
                s.synth,
                s.verify_reduced,
                s.explored_reduced,
                s.verified,
                if i + 1 < scale.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n  \"symbolic_before_after\": [\n");
        for (i, s) in scale.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{ \"name\": {}, \"before_s\": {:.6}, \"after_s\": {:.6}, \"before_states\": {}, \"after_states\": {}, \"speedup\": {:.2}, \"state_reduction\": {:.2} }}{}",
                json_str(&s.name),
                s.verify_full,
                s.verify_reduced,
                s.explored_full,
                s.explored_reduced,
                s.verify_full / s.verify_reduced.max(1e-9),
                s.explored_full as f64 / (s.explored_reduced.max(1)) as f64,
                if i + 1 < scale.len() { "," } else { "" }
            );
        }
        out.push_str("  ]");
    }
    if let Some(f) = fuzz {
        let curve = |points: &[(u64, usize)]| {
            points
                .iter()
                .map(|(cases, edges)| format!("[{cases}, {edges}]"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = write!(
            out,
            ",\n  \"fuzz_coverage\": {{\n    \"seed\": {},\n    \"iters\": {},\n    \"campaign_edges\": {},\n    \"fresh_edges\": {},\n    \"ratio\": {:.2},\n    \"corpus_size\": {},\n    \"campaign_curve\": [{}],\n    \"fresh_curve\": [{}]\n  }}",
            f.seed,
            f.iters,
            f.campaign_edges,
            f.fresh_edges,
            f.ratio(),
            f.corpus_size,
            curve(&f.curve),
            curve(&f.fresh_curve)
        );
    }
    out.push_str("\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_run() -> SuiteRun {
        SuiteRun {
            label: "test".into(),
            threads: 1,
            timings: vec![PhaseTimings {
                name: "toggle \"x\"".into(),
                states: 4,
                reach: 0.25,
                regions: 0.25,
                cover: 0.25,
                assign: 0.125,
                verify: 0.125,
                verified: true,
            }],
            wall: 1.0,
        }
    }

    #[test]
    fn totals_add_up() {
        let run = dummy_run();
        assert!((run.timings[0].total() - 1.0).abs() < 1e-12);
        assert!((run.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_shape_and_escaping() {
        let json = to_json(&[dummy_run()], &[], &[]);
        assert!(json.contains("\"runs\""));
        assert!(json.contains("\"toggle \\\"x\\\"\""));
        assert!(json.contains("\"wall_s\": 1.000000"));
        assert!(json.contains("\"verified\": true"));
        assert!(!json.contains("\"counters\""));
        assert!(!json.contains("\"cache\""));
        // The hand-rolled emitter must satisfy the workspace's own parser.
        simc_obs::json::parse(&json).expect("emitted JSON parses");
    }

    #[test]
    fn json_cache_section_round_trips() {
        let cache = CacheTimings {
            name: "toggle".into(),
            cold: 0.5,
            warm: 0.005,
            identical: true,
        };
        let json = to_json(&[dummy_run()], &[], &[cache]);
        let doc = simc_obs::json::parse(&json).expect("emitted JSON parses");
        let section = doc.get("cache").and_then(|v| v.as_array()).unwrap();
        assert_eq!(section.len(), 1);
        assert_eq!(section[0].get("identical").and_then(|v| v.as_bool()), Some(true));
        let speedup = section[0].get("speedup").and_then(|v| v.as_f64()).unwrap();
        assert!((speedup - 100.0).abs() < 1e-9, "{speedup}");
    }

    #[test]
    fn json_scale_sections_round_trip() {
        let scale = ScaleTimings {
            name: "scale-ring-13".into(),
            spec_states: 16384,
            reach: 0.02,
            synth: 0.1,
            verify_reduced: 0.01,
            explored_reduced: 2090,
            verify_full: 0.2,
            explored_full: 32769,
            verified: true,
        };
        let json = to_json_with_history(&[dummy_run()], &[], &[], &[], &[scale], None);
        let doc = simc_obs::json::parse(&json).expect("emitted JSON parses");
        let section = doc.get("scale").and_then(|v| v.as_array()).unwrap();
        assert_eq!(section[0].get("spec_states").and_then(|v| v.as_u64()), Some(16384));
        let ba = doc.get("symbolic_before_after").and_then(|v| v.as_array()).unwrap();
        assert_eq!(ba[0].get("before_states").and_then(|v| v.as_u64()), Some(32769));
        let speedup = ba[0].get("speedup").and_then(|v| v.as_f64()).unwrap();
        assert!((speedup - 20.0).abs() < 1e-9, "{speedup}");
    }

    #[test]
    fn json_fuzz_coverage_section_round_trips() {
        let fuzz = FuzzCoverage {
            seed: 0xDAC94,
            iters: 32,
            campaign_edges: 300,
            fresh_edges: 150,
            corpus_size: 24,
            curve: vec![(16, 200), (32, 300)],
            fresh_curve: vec![(16, 120), (32, 150)],
        };
        let json = to_json_with_history(&[dummy_run()], &[], &[], &[], &[], Some(&fuzz));
        let doc = simc_obs::json::parse(&json).expect("emitted JSON parses");
        let section = doc.get("fuzz_coverage").unwrap();
        assert_eq!(section.get("campaign_edges").and_then(|v| v.as_u64()), Some(300));
        assert_eq!(section.get("fresh_edges").and_then(|v| v.as_u64()), Some(150));
        let ratio = section.get("ratio").and_then(|v| v.as_f64()).unwrap();
        assert!((ratio - 2.0).abs() < 1e-9, "{ratio}");
        let curve = section.get("campaign_curve").and_then(|v| v.as_array()).unwrap();
        assert_eq!(curve.len(), 2);
    }

    #[test]
    fn fuzz_coverage_sweep_is_deterministic_and_guided_wins() {
        let a = fuzz_coverage_sweep(0xDAC94, 48);
        let b = fuzz_coverage_sweep(0xDAC94, 48);
        assert_eq!(a.campaign_edges, b.campaign_edges);
        assert_eq!(a.fresh_edges, b.fresh_edges);
        assert_eq!(a.curve, b.curve);
        assert_eq!(a.fresh_curve, b.fresh_curve);
        assert!(
            a.campaign_edges > a.fresh_edges,
            "campaign {} should beat fresh {}",
            a.campaign_edges,
            a.fresh_edges
        );
        // Both curves end at their sweep totals.
        assert_eq!(a.curve.last(), Some(&(48, a.campaign_edges)));
        assert_eq!(a.fresh_curve.last(), Some(&(48, a.fresh_edges)));
    }

    #[test]
    fn json_counters_section_round_trips() {
        let counters = BenchmarkCounters {
            name: "toggle".into(),
            states: 4,
            signals_added: 0,
            gates: 3,
            literals: 5,
            counters: simc_obs::Counter::ALL.iter().map(|&c| (c, 7)).collect(),
        };
        let json = to_json(&[dummy_run()], &[counters], &[]);
        let doc = simc_obs::json::parse(&json).expect("emitted JSON parses");
        let section = doc.get("counters").and_then(|v| v.as_array()).unwrap();
        assert_eq!(section.len(), 1);
        assert_eq!(section[0].get("gates").and_then(|v| v.as_u64()), Some(3));
        let pipeline = section[0].get("pipeline").unwrap();
        assert_eq!(
            pipeline.get("sat.solves").and_then(|v| v.as_u64()),
            Some(7)
        );
    }
}
