//! # simc — speed-independent circuits from Monotonous Covers
//!
//! A reproduction of Kondratyev, Kishinevsky, Lin, Vanbekbergen and
//! Yakovlev, *"Basic Gate Implementation of Speed-Independent Circuits"*
//! (DAC 1994): synthesis of hazard-free asynchronous circuits from state
//! graphs using only AND gates, OR gates and asynchronous latches.
//!
//! The supported entry point is the typed staged [`Pipeline`]: it drives
//! parsing → elaboration → region analysis → monotonous covers →
//! synthesis → verification, memoizes each stage per session, and — with
//! [`Pipeline::with_cache`] — memoizes the expensive artifacts across
//! sessions in a content-addressed [`cache`]. Failures surface as the
//! unified [`Error`] with a stable [`Error::kind`]. Import the common
//! surface in one line via [`prelude`].
//!
//! This facade crate also re-exports the per-crate APIs, which remain
//! supported as lower-level building blocks:
//!
//! * [`sg`] — state graphs, behavioural and region analysis;
//! * [`cube`] — Boolean cube algebra and two-level covers;
//! * [`sat`] — the CDCL SAT solver used by cover search and state
//!   assignment;
//! * [`stg`] — signal transition graphs (Petri nets) and their
//!   reachability-based translation to state graphs;
//! * [`netlist`] — gate-level netlists and speed-independence
//!   verification;
//! * [`mc`] — the paper's contribution: Monotonous Cover theory,
//!   standard C-/RS-implementation synthesis, the Beerel–Meng-style
//!   baseline, and MC-reduction by state-signal insertion;
//! * [`cache`] — the content-addressed artifact cache (in-memory LRU and
//!   on-disk backends);
//! * [`formats`] — interchange formats (EDIF 2.0.0 read/write, SPICE,
//!   Graphviz, the native `.sg` form) behind one `Format` registry;
//! * [`pipeline`] — the staged driver re-exported at the crate root;
//! * [`benchmarks`] — the paper's figures as executable state graphs, a
//!   reconstructed Table 1 benchmark suite, and scalable generators;
//! * [`obs`] — pipeline observability: hierarchical timing spans and
//!   typed counters across SAT, cover search, beam search, verification
//!   and the artifact cache;
//! * [`fuzz`] — differential fuzzing: seeded random specifications,
//!   agreement oracles over independent pipeline routes, fault
//!   injection, and a delta-debugging shrinker;
//! * [`serve`] — the `simc serve` daemon: an HTTP/1.1 JSON front end
//!   over the pipeline with single-flight deduplication, per-request
//!   deadlines and overload shedding.
//!
//! # Quickstart
//!
//! ```
//! use simc::prelude::*;
//!
//! # fn main() -> Result<(), simc::Error> {
//! // The paper's Figure 4 violates the Monotonous Cover requirement;
//! // the pipeline reduces it by state-signal insertion, synthesizes a
//! // standard C-element implementation, and verifies it hazard-free.
//! let mut pipeline = Pipeline::from_sg(simc::benchmarks::figures::figure4());
//! assert!(!pipeline.covered()?.report().satisfied());
//! assert!(pipeline.implemented()?.added_signals() > 0);
//! assert!(pipeline.verified()?.is_ok());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use simc_benchmarks as benchmarks;
pub use simc_cache as cache;
pub use simc_cube as cube;
pub use simc_formats as formats;
pub use simc_fuzz as fuzz;
pub use simc_obs as obs;
pub use simc_mc as mc;
pub use simc_netlist as netlist;
pub use simc_pipeline as pipeline;
pub use simc_sat as sat;
pub use simc_serve as serve;
pub use simc_sg as sg;
pub use simc_stg as stg;

pub use simc_pipeline::{
    Covered, Elaborated, Error, ErrorKind, Implemented, Pipeline, Regioned, Verified,
};

/// One-line import of the supported API surface.
///
/// ```
/// use simc::prelude::*;
/// ```
///
/// Brings in the staged [`Pipeline`] with its artifact types, the
/// unified [`Error`]/[`ErrorKind`], the cache backends, and the handful
/// of domain types almost every caller touches (state graphs, targets,
/// reports). Anything deeper lives under the per-crate modules
/// (`simc::mc`, `simc::sg`, …), which remain supported.
pub mod prelude {
    pub use simc_cache::{Cache, DiskCache, Key, LayeredCache, MemCache};
    pub use simc_formats::{Format, FormatError};
    pub use simc_mc::assign::ReduceOptions;
    pub use simc_mc::synth::Target;
    pub use simc_mc::{McCheck, McReport};
    pub use simc_netlist::{Netlist, VerifyOptions};
    pub use simc_pipeline::{
        Covered, Elaborated, Error, ErrorKind, Implemented, Pipeline, Regioned, Verified,
    };
    pub use simc_sg::{canonical_sg, parse_sg, write_sg, SignalKind, StateGraph};
    pub use simc_stg::{parse_g, Stg};
}
