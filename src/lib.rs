//! # simc — speed-independent circuits from Monotonous Covers
//!
//! A reproduction of Kondratyev, Kishinevsky, Lin, Vanbekbergen and
//! Yakovlev, *"Basic Gate Implementation of Speed-Independent Circuits"*
//! (DAC 1994): synthesis of hazard-free asynchronous circuits from state
//! graphs using only AND gates, OR gates and asynchronous latches.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`sg`] — state graphs, behavioural and region analysis;
//! * [`cube`] — Boolean cube algebra and two-level covers;
//! * [`sat`] — the CDCL SAT solver used by cover search and state
//!   assignment;
//! * [`stg`] — signal transition graphs (Petri nets) and their
//!   reachability-based translation to state graphs;
//! * [`netlist`] — gate-level netlists and speed-independence
//!   verification;
//! * [`mc`] — the paper's contribution: Monotonous Cover theory,
//!   standard C-/RS-implementation synthesis, the Beerel–Meng-style
//!   baseline, and MC-reduction by state-signal insertion;
//! * [`benchmarks`] — the paper's figures as executable state graphs, a
//!   reconstructed Table 1 benchmark suite, and scalable generators;
//! * [`obs`] — pipeline observability: hierarchical timing spans and
//!   typed counters across SAT, cover search, beam search and
//!   verification;
//! * [`fuzz`] — differential fuzzing: seeded random specifications,
//!   agreement oracles over independent pipeline routes, fault
//!   injection, and a delta-debugging shrinker.
//!
//! # Quickstart
//!
//! ```
//! use simc::sg::{SignalKind, StateGraph};
//! use simc::mc::McCheck;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Figure 4: a persistent SG that still violates the
//! // Monotonous Cover requirement.
//! let sg = simc::benchmarks::figures::figure4();
//! let report = McCheck::new(&sg).report();
//! assert!(!report.satisfied());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use simc_benchmarks as benchmarks;
pub use simc_cube as cube;
pub use simc_fuzz as fuzz;
pub use simc_obs as obs;
pub use simc_mc as mc;
pub use simc_netlist as netlist;
pub use simc_sat as sat;
pub use simc_sg as sg;
pub use simc_stg as stg;
