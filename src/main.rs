//! `simc` — command-line front end for the synthesis flow.
//!
//! ```text
//! simc analyze <spec.g>                 reachability, properties, MC report
//! simc reduce  <spec.g>                 insert state signals until MC holds
//! simc synth   <spec.g> [--rs] [--baseline] [--share] [--complex] [--verilog]
//! simc verify  <spec.g> [--rs] [--baseline]             full flow + verdict
//! simc dot     <spec.g>                 Graphviz of the state graph
//! ```
//!
//! `<spec>` is an STG in the SIS/petrify `.g` format or a state graph in
//! the `.sg` format (auto-detected via `.state graph`); `-` reads stdin.

use std::io::Read;
use std::process::ExitCode;

use simc::mc::assign::{reduce_to_mc, ReduceOptions};
use simc::mc::baseline::synthesize_baseline;
use simc::mc::gen::synthesize_generalized;
use simc::mc::synth::{synthesize, Implementation, Target};
use simc::mc::McCheck;
use simc::netlist::{verify, VerifyOptions};
use simc::sg::StateGraph;
use simc::stg::parse_g;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let flags: Vec<&str> =
        args.get(2..).unwrap_or_default().iter().map(String::as_str).collect();
    let target = if flags.contains(&"--rs") { Target::RsLatch } else { Target::CElement };
    match command.as_str() {
        "analyze" => analyze(&load(args.get(1))?),
        "reduce" => reduce(&load(args.get(1))?),
        "synth" => synth(&load(args.get(1))?, target, &flags),
        "verify" => do_verify(&load(args.get(1))?, target, &flags),
        "dot" => {
            println!("{}", load(args.get(1))?.to_dot());
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: simc <analyze|reduce|synth|verify|dot> <spec.g|-> \
     [--rs] [--baseline] [--share] [--complex] [--verilog]"
        .to_string()
}

fn load(path: Option<&String>) -> Result<StateGraph, String> {
    let path = path.ok_or_else(usage)?;
    let text = if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buffer
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    if text.contains(".state graph") {
        return simc::sg::parse_sg(&text).map_err(|e| format!("parsing {path}: {e}"));
    }
    let stg = parse_g(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    stg.to_state_graph()
        .map_err(|e| format!("reachability of {path}: {e}"))
}

fn analyze(sg: &StateGraph) -> Result<(), String> {
    println!("states: {}", sg.state_count());
    println!("edges:  {}", sg.edge_count());
    let inputs: Vec<&str> = sg
        .input_signals()
        .iter()
        .map(|&s| sg.signal(s).name())
        .collect();
    let outputs: Vec<&str> = sg
        .non_input_signals()
        .iter()
        .map(|&s| sg.signal(s).name())
        .collect();
    println!("inputs: {}", inputs.join(" "));
    println!("non-inputs: {}", outputs.join(" "));
    let analysis = sg.analysis();
    println!("semi-modular: {}", analysis.is_semimodular());
    println!("output semi-modular: {}", analysis.is_output_semimodular());
    println!("output distributive: {}", analysis.is_output_distributive());
    println!("CSC: {}", analysis.has_csc());
    println!("USC: {}", analysis.has_usc());
    let regions = sg.regions();
    println!("excitation regions: {}", regions.er_count());
    println!("output persistent: {}", regions.is_output_persistent(sg));
    let report = McCheck::new(sg).report();
    println!(
        "MC requirement: {}",
        if report.satisfied() { "satisfied" } else { "VIOLATED" }
    );
    print!("{}", report.render(sg));
    Ok(())
}

fn reduce(sg: &StateGraph) -> Result<(), String> {
    let result = reduce_to_mc(sg, ReduceOptions::default()).map_err(|e| e.to_string())?;
    println!(
        "inserted {} signal(s); {} -> {} states",
        result.added,
        sg.state_count(),
        result.sg.state_count()
    );
    for line in &result.log {
        println!("  {line}");
    }
    println!();
    print!("{}", McCheck::new(&result.sg).report().render(&result.sg));
    Ok(())
}

fn reduced_or_original(sg: &StateGraph) -> Result<StateGraph, String> {
    if McCheck::new(sg).report().satisfied() {
        Ok(sg.clone())
    } else {
        let result = reduce_to_mc(sg, ReduceOptions::default()).map_err(|e| e.to_string())?;
        eprintln!("note: inserted {} state signal(s) to satisfy MC", result.added);
        Ok(result.sg)
    }
}

fn build(sg: &StateGraph, target: Target, flags: &[&str]) -> Result<Implementation, String> {
    if flags.contains(&"--baseline") {
        synthesize_baseline(sg, target).map_err(|e| e.to_string())
    } else if flags.contains(&"--share") {
        synthesize_generalized(sg, target).map_err(|e| e.to_string())
    } else {
        synthesize(sg, target).map_err(|e| e.to_string())
    }
}

fn synth(sg: &StateGraph, target: Target, flags: &[&str]) -> Result<(), String> {
    if flags.contains(&"--complex") {
        // Complex-gate style: CSC suffices, no insertion needed.
        let netlist = simc::mc::complex::synthesize_complex(sg).map_err(|e| e.to_string())?;
        if flags.contains(&"--verilog") {
            print!("{}", simc::netlist::primitive_library());
            print!("{}", simc::netlist::to_verilog(&netlist, "simc_top"));
        } else {
            println!("(one atomic complex gate per output; see --verilog for the functions)");
        }
        eprintln!("{}", netlist.stats());
        return Ok(());
    }
    let working = if flags.contains(&"--baseline") {
        sg.clone()
    } else {
        reduced_or_original(sg)?
    };
    let implementation = build(&working, target, flags)?;
    let netlist = implementation.to_netlist().map_err(|e| e.to_string())?;
    if flags.contains(&"--verilog") {
        print!("{}", simc::netlist::primitive_library());
        print!("{}", simc::netlist::to_verilog(&netlist, "simc_top"));
    } else {
        print!("{}", implementation.equations());
    }
    eprintln!("{}", netlist.stats());
    Ok(())
}

fn do_verify(sg: &StateGraph, target: Target, flags: &[&str]) -> Result<(), String> {
    if flags.contains(&"--complex") {
        let netlist = simc::mc::complex::synthesize_complex(sg).map_err(|e| e.to_string())?;
        let report =
            verify(&netlist, sg, VerifyOptions::default()).map_err(|e| e.to_string())?;
        println!(
            "{} ({} composed states explored)",
            if report.is_ok() { "hazard-free" } else { "HAZARDOUS" },
            report.explored
        );
        return if report.is_ok() {
            Ok(())
        } else {
            Err(format!("{} violation(s) found", report.violations.len()))
        };
    }
    let working = if flags.contains(&"--baseline") {
        sg.clone()
    } else {
        reduced_or_original(sg)?
    };
    let implementation = build(&working, target, flags)?;
    let netlist = implementation.to_netlist().map_err(|e| e.to_string())?;
    let report =
        verify(&netlist, &working, VerifyOptions::default()).map_err(|e| e.to_string())?;
    println!(
        "{} ({} composed states explored)",
        if report.is_ok() { "hazard-free" } else { "HAZARDOUS" },
        report.explored
    );
    for violation in &report.violations {
        println!("  {}", report.describe(&netlist, &working, violation));
    }
    if report.is_ok() {
        Ok(())
    } else {
        Err(format!("{} violation(s) found", report.violations.len()))
    }
}
