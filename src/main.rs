//! `simc` — command-line front end for the synthesis flow.
//!
//! ```text
//! simc analyze <spec.g>                 reachability, properties, MC report
//! simc reduce  <spec.g>                 insert state signals until MC holds
//! simc synth   <spec.g> [--rs] [--baseline] [--share] [--complex] [--verilog]
//! simc verify  <spec.g> [--rs] [--baseline]             full flow + verdict
//! simc dot     <spec.g>                 Graphviz of the state graph
//! ```
//!
//! `<spec>` is an STG in the SIS/petrify `.g` format or a state graph in
//! the `.sg` format (auto-detected via `.state graph`); `-` reads stdin;
//! `benchmarks/<name>` resolves a member of the built-in Table 1 suite
//! when no such file exists on disk.
//!
//! Every subcommand accepts `--stats` (pipeline counters and phase
//! timings on stderr) and `--stats-json <path>` (the same report as a
//! JSON document).

use std::io::Read;
use std::process::ExitCode;

use simc::mc::assign::{reduce_to_mc, ReduceOptions};
use simc::mc::baseline::synthesize_baseline;
use simc::mc::gen::synthesize_generalized;
use simc::mc::synth::{synthesize, Implementation, Target};
use simc::mc::McCheck;
use simc::netlist::{verify, VerifyOptions};
use simc::sg::StateGraph;
use simc::stg::parse_g;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Flags that take no argument, valid on every subcommand.
const KNOWN_FLAGS: &[&str] =
    &["--rs", "--baseline", "--share", "--complex", "--verilog", "--stats"];

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let rest = args.get(2..).unwrap_or_default();
    let mut flags: Vec<&str> = Vec::new();
    let mut stats_json: Option<&str> = None;
    let mut i = 0;
    while i < rest.len() {
        let arg = rest[i].as_str();
        if arg == "--stats-json" {
            i += 1;
            stats_json = Some(
                rest.get(i)
                    .ok_or_else(|| format!("--stats-json needs a file path\n{}", usage()))?,
            );
        } else if KNOWN_FLAGS.contains(&arg) {
            flags.push(arg);
        } else {
            return Err(format!("unknown flag `{arg}`\n{}", usage()));
        }
        i += 1;
    }
    let stats = flags.contains(&"--stats") || stats_json.is_some();
    if stats {
        simc::obs::set_stats(true);
    }
    let target = if flags.contains(&"--rs") { Target::RsLatch } else { Target::CElement };
    let result = match command.as_str() {
        "analyze" => analyze(&load(args.get(1))?),
        "reduce" => reduce(&load(args.get(1))?),
        "synth" => synth(&load(args.get(1))?, target, &flags),
        "verify" => do_verify(&load(args.get(1))?, target, &flags),
        "dot" => load(args.get(1)).map(|sg| println!("{}", sg.to_dot())),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    if stats {
        let report = simc::obs::report();
        eprint!("{}", report.render());
        if let Some(path) = stats_json {
            std::fs::write(path, report.to_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
    }
    result
}

fn usage() -> String {
    "usage: simc <analyze|reduce|synth|verify|dot> <spec.g|spec.sg|benchmarks/<name>|-> \
     [--rs] [--baseline] [--share] [--complex] [--verilog] \
     [--stats] [--stats-json <path>]"
        .to_string()
}

fn load(path: Option<&String>) -> Result<StateGraph, String> {
    let path = path.ok_or_else(usage)?;
    let text = if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buffer
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            // Fall back to the built-in Table 1 suite: `benchmarks/<name>`
            // works without the specs existing on disk.
            Err(e) => match builtin_benchmark(path) {
                Some(stg) => {
                    return stg
                        .to_state_graph()
                        .map_err(|e| format!("reachability of {path}: {e}"))
                }
                None => return Err(format!("reading {path}: {e}")),
            },
        }
    };
    if text.contains(".state graph") {
        return simc::sg::parse_sg(&text).map_err(|e| format!("parsing {path}: {e}"));
    }
    let stg = parse_g(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    stg.to_state_graph()
        .map_err(|e| format!("reachability of {path}: {e}"))
}

/// Resolves `benchmarks/<name>` (or a bare suite name) against the
/// built-in reconstructed Table 1 suite.
fn builtin_benchmark(path: &str) -> Option<simc::stg::Stg> {
    let name = path.strip_prefix("benchmarks/").unwrap_or(path);
    simc::benchmarks::suite::all()
        .into_iter()
        .find(|b| b.name == name)
        .map(|b| b.stg)
}

fn analyze(sg: &StateGraph) -> Result<(), String> {
    println!("states: {}", sg.state_count());
    println!("edges:  {}", sg.edge_count());
    let inputs: Vec<&str> = sg
        .input_signals()
        .iter()
        .map(|&s| sg.signal(s).name())
        .collect();
    let outputs: Vec<&str> = sg
        .non_input_signals()
        .iter()
        .map(|&s| sg.signal(s).name())
        .collect();
    println!("inputs: {}", inputs.join(" "));
    println!("non-inputs: {}", outputs.join(" "));
    let analysis = sg.analysis();
    println!("semi-modular: {}", analysis.is_semimodular());
    println!("output semi-modular: {}", analysis.is_output_semimodular());
    println!("output distributive: {}", analysis.is_output_distributive());
    println!("CSC: {}", analysis.has_csc());
    println!("USC: {}", analysis.has_usc());
    let regions = sg.regions();
    println!("excitation regions: {}", regions.er_count());
    println!("output persistent: {}", regions.is_output_persistent(sg));
    let report = McCheck::new(sg).report();
    println!(
        "MC requirement: {}",
        if report.satisfied() { "satisfied" } else { "VIOLATED" }
    );
    print!("{}", report.render(sg));
    Ok(())
}

fn reduce(sg: &StateGraph) -> Result<(), String> {
    let result = reduce_to_mc(sg, ReduceOptions::default()).map_err(|e| e.to_string())?;
    println!(
        "inserted {} signal(s); {} -> {} states",
        result.added,
        sg.state_count(),
        result.sg.state_count()
    );
    for line in &result.log {
        println!("  {line}");
    }
    println!();
    print!("{}", McCheck::new(&result.sg).report().render(&result.sg));
    Ok(())
}

fn reduced_or_original(sg: &StateGraph) -> Result<StateGraph, String> {
    if McCheck::new(sg).report().satisfied() {
        Ok(sg.clone())
    } else {
        let result = reduce_to_mc(sg, ReduceOptions::default()).map_err(|e| e.to_string())?;
        eprintln!("note: inserted {} state signal(s) to satisfy MC", result.added);
        Ok(result.sg)
    }
}

fn build(sg: &StateGraph, target: Target, flags: &[&str]) -> Result<Implementation, String> {
    if flags.contains(&"--baseline") {
        synthesize_baseline(sg, target).map_err(|e| e.to_string())
    } else if flags.contains(&"--share") {
        synthesize_generalized(sg, target).map_err(|e| e.to_string())
    } else {
        synthesize(sg, target).map_err(|e| e.to_string())
    }
}

fn synth(sg: &StateGraph, target: Target, flags: &[&str]) -> Result<(), String> {
    if flags.contains(&"--complex") {
        // Complex-gate style: CSC suffices, no insertion needed.
        let netlist = simc::mc::complex::synthesize_complex(sg).map_err(|e| e.to_string())?;
        if flags.contains(&"--verilog") {
            print!("{}", simc::netlist::primitive_library());
            print!("{}", simc::netlist::to_verilog(&netlist, "simc_top"));
        } else {
            println!("(one atomic complex gate per output; see --verilog for the functions)");
        }
        eprintln!("{}", netlist.stats());
        return Ok(());
    }
    let working = if flags.contains(&"--baseline") {
        sg.clone()
    } else {
        reduced_or_original(sg)?
    };
    let implementation = build(&working, target, flags)?;
    let netlist = implementation.to_netlist().map_err(|e| e.to_string())?;
    if flags.contains(&"--verilog") {
        print!("{}", simc::netlist::primitive_library());
        print!("{}", simc::netlist::to_verilog(&netlist, "simc_top"));
    } else {
        print!("{}", implementation.equations());
    }
    eprintln!("{}", netlist.stats());
    Ok(())
}

fn do_verify(sg: &StateGraph, target: Target, flags: &[&str]) -> Result<(), String> {
    if flags.contains(&"--complex") {
        let netlist = simc::mc::complex::synthesize_complex(sg).map_err(|e| e.to_string())?;
        let report =
            verify(&netlist, sg, VerifyOptions::default()).map_err(|e| e.to_string())?;
        println!(
            "{} ({} composed states explored)",
            if report.is_ok() { "hazard-free" } else { "HAZARDOUS" },
            report.explored
        );
        return if report.is_ok() {
            Ok(())
        } else {
            Err(format!("{} violation(s) found", report.violations.len()))
        };
    }
    let working = if flags.contains(&"--baseline") {
        sg.clone()
    } else {
        reduced_or_original(sg)?
    };
    let implementation = build(&working, target, flags)?;
    let netlist = implementation.to_netlist().map_err(|e| e.to_string())?;
    let report =
        verify(&netlist, &working, VerifyOptions::default()).map_err(|e| e.to_string())?;
    println!(
        "{} ({} composed states explored)",
        if report.is_ok() { "hazard-free" } else { "HAZARDOUS" },
        report.explored
    );
    for violation in &report.violations {
        println!("  {}", report.describe(&netlist, &working, violation));
    }
    if report.is_ok() {
        Ok(())
    } else {
        Err(format!("{} violation(s) found", report.violations.len()))
    }
}
