//! `simc` — command-line front end for the synthesis flow.
//!
//! ```text
//! simc analyze <spec.g>                 reachability, properties, MC report
//! simc reduce  <spec.g>                 insert state signals until MC holds
//! simc synth   <spec.g> [--rs] [--baseline] [--share] [--complex] [--verilog]
//! simc verify  <spec.g> [--rs] [--baseline]             full flow + verdict
//! simc dot     <spec.g>                 Graphviz of the state graph
//! simc convert <spec|file.edif> --to <fmt>  emit sg/edif/spice/dot; --list
//! simc batch   <manifest> [--threads <n>] [--out <path>]    run many specs
//! simc fuzz    [--seed <n>] [--iters <n>] [--threads <n>]   differential fuzzing
//! simc fuzz    --campaign [--corpus <dir>] [--shards <n>]   coverage-guided campaign
//! simc serve   [--port <n>] [--threads <n>] [--queue <n>]   HTTP synthesis daemon
//! ```
//!
//! `<spec>` is an STG in the SIS/petrify `.g` format or a state graph in
//! the `.sg` format (auto-detected via `.state graph`); `-` reads stdin;
//! `benchmarks/<name>` resolves a member of the built-in Table 1 suite
//! (or the large `scale-ring-*` family) when no such file exists on disk.
//!
//! Each subcommand's surface — its flags, whether it takes a spec, its
//! usage line — is declared once in the [`COMMANDS`] table; the parser
//! and every rejection diagnostic are generated from it, so the binary
//! has exactly one source of truth for what each command accepts.
//!
//! `--dot <path>` writes a Graphviz export alongside any spec-processing
//! subcommand: the state graph for `analyze`/`dot`, the synthesized
//! netlist for `synth`/`verify` — so large repros stay inspectable. The
//! rendering goes through the interchange-format registry (see
//! [`simc::formats`]), the same `dot` format `simc convert` exposes.
//!
//! `simc convert` re-emits a spec in any registered interchange format
//! (`--to sg|edif|spice|dot`); an input that is itself an EDIF netlist
//! (from an earlier `convert`) is parsed back and re-emitted without
//! running synthesis. `simc convert --list` prints the registry as JSON,
//! byte-identical to the daemon's `GET /v1/formats`.
//!
//! Every subcommand accepts `--stats` (pipeline counters and phase
//! timings on stderr) and `--stats-json <path>` (the same report as a
//! JSON document). Every spec-processing subcommand accepts
//! `--cache-dir <dir>`, an on-disk content-addressed artifact cache that
//! memoizes elaboration, region analysis, cover minimization,
//! MC-reduction, format conversions and verification verdicts across
//! runs; cached and uncached runs produce byte-identical output.
//!
//! `simc batch` reads a manifest with one spec per line (`#` comments,
//! `--rs` per line, `benchmarks/*` expands the built-in suite), runs the
//! full flow for each job in parallel over a shared cache, and emits a
//! deterministic JSON summary.
//!
//! `simc serve` starts the long-running HTTP daemon (see [`simc::serve`]):
//! `POST /v1/{analyze,synth,verify,convert}` with a spec body,
//! single-flight deduplicated over a shared warm cache, until
//! `POST /shutdown` drains it. `--port 0` (the default) binds an
//! ephemeral port; the chosen address is printed to stdout as
//! `listening on http://...`.
//!
//! Exit codes: `0` success, `1` operational failure (hazards found, CSC
//! violation, oracle disagreement, failed batch job), `2` usage error or
//! malformed input.
//!
//! Since the pipeline rework the subcommands run on [`simc::Pipeline`];
//! spec numbering in outputs is the canonical (BFS-renumbered) form, so
//! isomorphic inputs print identically.

use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

use simc::cache::{Cache, DiskCache, LayeredCache, MemCache};
use simc::formats::Artifact;
use simc::mc::baseline::synthesize_baseline;
use simc::mc::gen::synthesize_generalized;
use simc::mc::parallel::parallel_map;
use simc::mc::synth::Target;
use simc::netlist::{verify, VerifyOptions};
use simc::sg::StateGraph;
use simc::{ErrorKind, Pipeline};

/// A CLI failure carrying its exit code.
enum CliError {
    /// Exit 2: bad invocation or malformed input — the request never made
    /// sense, rerunning it unchanged cannot succeed.
    Usage(String),
    /// Exit 1: a well-formed request whose answer is negative — hazards
    /// found, a property violated, a search that gave up.
    Failure(String),
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError::Usage(message.into())
    }

    fn failure(message: impl Into<String>) -> Self {
        CliError::Failure(message.into())
    }
}

/// Maps a pipeline error to the CLI exit-code contract: parse-kind
/// errors are usage errors (exit 2), everything else is operational
/// (exit 1).
fn cli_error(error: simc::Error, context: &str) -> CliError {
    let message = format!("{context}: {error}");
    match error.kind() {
        ErrorKind::Parse => CliError::usage(message),
        _ => CliError::failure(message),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Failure(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

/// How a subcommand treats its first argument.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SpecArg {
    /// No spec argument: flags start right after the command.
    No,
    /// The first argument is always the spec (or manifest) path.
    Yes,
    /// The first argument is the spec only when it does not look like a
    /// flag — `simc convert --list` needs no input.
    Auto,
}

/// One subcommand's declared surface. The parser, the usage text and all
/// flag-rejection diagnostics are generated from [`COMMANDS`], so adding
/// a flag to a command is one edit in this table.
struct CommandSpec {
    name: &'static str,
    spec_arg: SpecArg,
    /// Accepted flags that take no value.
    switches: &'static [&'static str],
    /// Accepted flags that take one value.
    value_flags: &'static [&'static str],
    /// The command's usage line.
    usage: &'static str,
}

/// Switches every subcommand accepts.
const GLOBAL_SWITCHES: &[&str] = &["--stats"];

/// Value-taking flags every subcommand accepts.
const GLOBAL_VALUE_FLAGS: &[&str] = &["--stats-json"];

/// The declarative subcommand table (see [`CommandSpec`]).
const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "analyze",
        spec_arg: SpecArg::Yes,
        switches: &["--rs"],
        value_flags: &["--dot", "--cache-dir"],
        usage: "simc analyze <spec> [--rs] [--dot <path>] [--cache-dir <dir>]",
    },
    CommandSpec {
        name: "reduce",
        spec_arg: SpecArg::Yes,
        switches: &["--rs"],
        value_flags: &["--cache-dir"],
        usage: "simc reduce <spec> [--rs] [--cache-dir <dir>]",
    },
    CommandSpec {
        name: "synth",
        spec_arg: SpecArg::Yes,
        switches: &["--rs", "--baseline", "--share", "--complex", "--verilog"],
        value_flags: &["--dot", "--threads", "--cache-dir"],
        usage: "simc synth <spec> [--rs] [--baseline] [--share] [--complex] [--verilog] \
                [--dot <path>] [--threads <n>] [--cache-dir <dir>]",
    },
    CommandSpec {
        name: "verify",
        spec_arg: SpecArg::Yes,
        switches: &["--rs", "--baseline", "--share", "--complex", "--verilog"],
        value_flags: &["--dot", "--threads", "--cache-dir"],
        usage: "simc verify <spec> [--rs] [--baseline] [--share] [--complex] [--verilog] \
                [--dot <path>] [--threads <n>] [--cache-dir <dir>]",
    },
    CommandSpec {
        name: "dot",
        spec_arg: SpecArg::Yes,
        switches: &[],
        value_flags: &["--dot", "--cache-dir"],
        usage: "simc dot <spec> [--dot <path>] [--cache-dir <dir>]",
    },
    CommandSpec {
        name: "convert",
        spec_arg: SpecArg::Auto,
        switches: &["--rs", "--list"],
        value_flags: &["--to", "--cache-dir"],
        usage: "simc convert <spec|netlist.edif> --to <format> [--rs] [--cache-dir <dir>]  \
                (or: simc convert --list)",
    },
    CommandSpec {
        name: "batch",
        spec_arg: SpecArg::Yes,
        switches: &["--rs"],
        value_flags: &["--threads", "--cache-dir", "--out"],
        usage: "simc batch <manifest> [--rs] [--threads <n>] [--cache-dir <dir>] [--out <path>]",
    },
    CommandSpec {
        name: "fuzz",
        spec_arg: SpecArg::No,
        switches: &["--campaign"],
        value_flags: &["--seed", "--iters", "--shards", "--corpus", "--threads", "--out"],
        usage: "simc fuzz [--campaign] [--seed <n>] [--iters <n>] [--shards <n>] \
                [--corpus <dir>] [--threads <n>] [--out <path>]",
    },
    CommandSpec {
        name: "serve",
        spec_arg: SpecArg::No,
        switches: &[],
        value_flags: &["--addr", "--port", "--queue", "--threads", "--cache-dir"],
        usage: "simc serve [--addr <host:port>] [--port <n>] [--threads <n>] [--queue <n>] \
                [--cache-dir <dir>]",
    },
];

/// In-memory cache budget fronting the on-disk store (per process).
const MEM_CACHE_BYTES: usize = 32 << 20;

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::usage(usage()));
    };
    match command.as_str() {
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            return Ok(());
        }
        _ => {}
    }
    let Some(spec) = COMMANDS.iter().find(|c| c.name == command) else {
        return Err(CliError::usage(format!("unknown command `{command}`\n{}", usage())));
    };
    let (spec_path, rest) = match spec.spec_arg {
        SpecArg::No => (None, args.get(1..).unwrap_or_default()),
        SpecArg::Yes => (args.get(1), args.get(2..).unwrap_or_default()),
        SpecArg::Auto => match args.get(1) {
            Some(first) if !first.starts_with("--") => {
                (Some(first), args.get(2..).unwrap_or_default())
            }
            _ => (None, args.get(1..).unwrap_or_default()),
        },
    };
    let mut switches: Vec<&str> = Vec::new();
    let mut values: Vec<(&str, &str)> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let arg = rest[i].as_str();
        if GLOBAL_SWITCHES.contains(&arg) || spec.switches.contains(&arg) {
            switches.push(arg);
        } else if GLOBAL_VALUE_FLAGS.contains(&arg) || spec.value_flags.contains(&arg) {
            i += 1;
            let value = rest.get(i).ok_or_else(|| {
                CliError::usage(format!("{arg} needs {}\n{}", value_noun(arg), usage()))
            })?;
            values.push((arg, value));
        } else {
            return Err(CliError::usage(flag_rejection(arg)));
        }
        i += 1;
    }
    let value_of = |flag: &str| values.iter().rev().find(|(f, _)| *f == flag).map(|&(_, v)| v);
    let stats_json = value_of("--stats-json");
    let stats = switches.contains(&"--stats") || stats_json.is_some();
    if stats {
        simc::obs::set_stats(true);
    }
    let target = if switches.contains(&"--rs") { Target::RsLatch } else { Target::CElement };
    let cache = make_cache(value_of("--cache-dir"))?;
    let dot_path = value_of("--dot");
    let out_path = value_of("--out");
    let threads = value_of("--threads");
    let result = match spec.name {
        "analyze" => {
            let mut pipeline = pipeline_for(spec_path, target, &cache)?;
            if dot_path.is_some() {
                let rendered = render_dot(&Artifact::Sg(elaborated(&mut pipeline)?.sg()));
                write_dot(dot_path, || rendered)?;
            }
            analyze(pipeline)
        }
        "reduce" => reduce(pipeline_for(spec_path, target, &cache)?),
        "synth" => {
            let mut pipeline = pipeline_for(spec_path, target, &cache)?;
            if let Some(n) = parse_threads(threads)? {
                pipeline = pipeline.with_threads(n);
            }
            synth(pipeline, target, &switches, dot_path)
        }
        "verify" => {
            let mut pipeline = pipeline_for(spec_path, target, &cache)?;
            if let Some(n) = parse_threads(threads)? {
                pipeline = pipeline.with_threads(n);
            }
            do_verify(pipeline, target, &switches, dot_path)
        }
        "dot" => {
            let mut pipeline = pipeline_for(spec_path, target, &cache)?;
            let rendered = render_dot(&Artifact::Sg(elaborated(&mut pipeline)?.sg()));
            match dot_path {
                Some(_) => write_dot(dot_path, || rendered)?,
                None => println!("{rendered}"),
            }
            Ok(())
        }
        "convert" => convert(
            spec_path,
            switches.contains(&"--list"),
            value_of("--to"),
            target,
            &cache,
        ),
        "batch" => batch(spec_path, target, &cache, threads, out_path),
        "fuzz" => {
            let fuzz_values: Vec<(&str, &str)> = values
                .iter()
                .filter(|(f, _)| ["--seed", "--iters", "--shards", "--corpus", "--threads"].contains(f))
                .copied()
                .collect();
            fuzz(&fuzz_values, switches.contains(&"--campaign"), out_path)
        }
        "serve" => {
            let serve_values: Vec<(&str, &str)> = values
                .iter()
                .filter(|(f, _)| ["--addr", "--port", "--queue"].contains(f))
                .copied()
                .collect();
            serve(&serve_values, threads, &cache)
        }
        other => unreachable!("`{other}` is in COMMANDS but not dispatched"),
    };
    if stats {
        let report = simc::obs::report();
        eprint!("{}", report.render());
        if let Some(path) = stats_json {
            std::fs::write(path, report.to_json())
                .map_err(|e| CliError::failure(format!("writing {path}: {e}")))?;
        }
    }
    result
}

/// The usage text, generated from [`COMMANDS`].
fn usage() -> String {
    let mut out = String::from("usage: ");
    for (i, command) in COMMANDS.iter().enumerate() {
        if i > 0 {
            out.push_str("\n       ");
        }
        out.push_str(command.usage);
    }
    out.push_str(
        "\n       every command also accepts [--stats] [--stats-json <path>]; \
         <spec> is a .g/.sg file, `-` for stdin, or benchmarks/<name>",
    );
    out
}

/// What a value-taking flag's missing operand should be called.
fn value_noun(flag: &str) -> &'static str {
    match flag {
        "--stats-json" | "--dot" | "--out" => "a file path",
        "--cache-dir" | "--corpus" => "a directory path",
        "--to" => "a format id",
        _ => "a value",
    }
}

/// The diagnostic for a flag the current command does not accept:
/// names the commands that do (generated from [`COMMANDS`]), or reports
/// an unknown flag when none does.
fn flag_rejection(arg: &str) -> String {
    let accepters: Vec<String> = COMMANDS
        .iter()
        .filter(|c| c.switches.contains(&arg) || c.value_flags.contains(&arg))
        .map(|c| format!("`simc {}`", c.name))
        .collect();
    match accepters.split_last() {
        None => format!("unknown flag `{arg}`\n{}", usage()),
        Some((only, [])) => format!("`{arg}` is only valid with {only}\n{}", usage()),
        Some((last, init)) => format!(
            "`{arg}` is only valid with {} or {last}\n{}",
            init.join(", "),
            usage()
        ),
    }
}

/// Parses `--threads` for the pipeline-driving commands.
fn parse_threads(threads: Option<&str>) -> Result<Option<usize>, CliError> {
    let Some(value) = threads else { return Ok(None) };
    let parsed = value.parse::<u64>().map_err(|_| {
        CliError::usage(format!("--threads needs an unsigned integer, got `{value}`"))
    })?;
    if parsed == 0 {
        return Err(CliError::usage("--threads must be at least 1".to_string()));
    }
    Ok(Some(parsed as usize))
}

/// Renders an artifact through the registered `dot` format — the same
/// emitter `simc convert --to dot` uses, so every Graphviz export in the
/// binary shares one code path.
fn render_dot(artifact: &Artifact<'_>) -> String {
    simc::formats::by_id("dot")
        .and_then(|f| f.emit(artifact))
        .expect("the dot format is registered and emits both artifact kinds")
}

/// `simc convert`: re-emit the spec (or an EDIF netlist) in a registered
/// interchange format; `--list` prints the registry as JSON.
fn convert(
    spec_path: Option<&String>,
    list: bool,
    to: Option<&str>,
    target: Target,
    cache: &Option<Arc<dyn Cache>>,
) -> Result<(), CliError> {
    if list {
        print!("{}", simc::formats::listing_json());
        return Ok(());
    }
    let Some(to) = to else {
        return Err(CliError::usage(format!(
            "`simc convert` needs `--to <format>` (or `--list`)\n{}",
            usage()
        )));
    };
    let format = simc::formats::by_id(to)
        .map_err(|e| CliError::usage(format!("{e}\n{}", simc::formats::listing_json())))?;
    let (spec, label) = load_spec(spec_path)?;
    let text = match spec {
        // An input that is already an EDIF netlist: parse it back and
        // re-emit without running the synthesis pipeline.
        Spec::Text(text) if simc::formats::looks_like_edif(&text) => {
            simc::formats::reemit_cached(
                cache.as_deref(),
                &text,
                &simc::formats::EdifFormat,
                format,
            )
            .map_err(|e| cli_error(simc::Error::from(e), &format!("converting {label}")))?
        }
        spec => {
            let mut pipeline = pipeline_from_spec(spec, &label, target, cache)?;
            pipeline
                .converted(to)
                .map_err(|e| cli_error(e, &format!("converting {label}")))?
        }
    };
    print!("{text}");
    Ok(())
}

/// Parses a decimal or `0x`-prefixed hexadecimal u64.
fn parse_u64(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// Opens the layered artifact cache when `--cache-dir` was given.
fn make_cache(cache_dir: Option<&str>) -> Result<Option<Arc<dyn Cache>>, CliError> {
    let Some(dir) = cache_dir else { return Ok(None) };
    let disk = DiskCache::new(dir)
        .map_err(|e| CliError::failure(format!("opening cache dir {dir}: {e}")))?;
    Ok(Some(Arc::new(LayeredCache::new(MemCache::new(MEM_CACHE_BYTES), disk))))
}

fn fuzz(values: &[(&str, &str)], campaign: bool, out_path: Option<&str>) -> Result<(), CliError> {
    let mut config = simc::fuzz::CampaignConfig::default();
    for &(flag, value) in values {
        if flag == "--corpus" {
            if !campaign {
                return Err(CliError::usage(
                    "`--corpus` requires `--campaign`".to_string(),
                ));
            }
            config.corpus_dir = Some(std::path::PathBuf::from(value));
            continue;
        }
        let parsed = parse_u64(value).ok_or_else(|| {
            CliError::usage(format!("{flag} needs an unsigned integer, got `{value}`"))
        })?;
        match flag {
            "--seed" => config.seed = parsed,
            "--iters" => config.iters = parsed,
            "--threads" => {
                if parsed == 0 {
                    return Err(CliError::usage("--threads must be at least 1".to_string()));
                }
                config.threads = parsed as usize;
            }
            "--shards" => {
                if !campaign {
                    return Err(CliError::usage(
                        "`--shards` requires `--campaign`".to_string(),
                    ));
                }
                if parsed == 0 {
                    return Err(CliError::usage("--shards must be at least 1".to_string()));
                }
                config.shards = parsed as usize;
            }
            _ => unreachable!("only fuzz value flags reach here"),
        }
    }
    if out_path.is_some() && !campaign {
        return Err(CliError::usage(
            "`--out` with `simc fuzz` requires `--campaign`".to_string(),
        ));
    }
    // Zero iterations runs no oracle at all: "success" would be
    // vacuous, so the request itself is malformed.
    if config.iters == 0 {
        return Err(CliError::usage("--iters must be at least 1".to_string()));
    }
    if campaign {
        return fuzz_campaign(&config, out_path);
    }
    let config = simc::fuzz::FuzzConfig {
        seed: config.seed,
        iters: config.iters,
        threads: config.threads,
        ..simc::fuzz::FuzzConfig::default()
    };
    let report = simc::fuzz::run(config);
    println!("{}", report.summary());
    for failure in &report.failures {
        println!();
        println!(
            "case {} (seed {:#x}) disagrees with oracle `{}`: {}",
            failure.case_index,
            config.seed,
            failure.oracle.name(),
            failure.detail
        );
        println!("shrunk in {} step(s) to this repro:", failure.shrink_steps);
        print!("{}", failure.repro_sg);
    }
    if report.is_ok() {
        Ok(())
    } else if report.failures.is_empty() {
        Err(CliError::failure(format!(
            "{}/{} injected fault(s) went undetected",
            report.faults_injected - report.faults_detected,
            report.faults_injected
        )))
    } else {
        Err(CliError::failure(format!(
            "{} oracle disagreement(s)",
            report.failures.len()
        )))
    }
}

/// Runs a coverage-guided campaign: the deterministic JSON summary goes
/// to stdout (or `--out`), human-readable progress and failure repros to
/// stderr, so the summary stays byte-comparable across runs.
fn fuzz_campaign(
    config: &simc::fuzz::CampaignConfig,
    out_path: Option<&str>,
) -> Result<(), CliError> {
    let report = simc::fuzz::run_campaign(config)
        .map_err(|e| CliError::failure(format!("campaign corpus: {e}")))?;
    eprintln!("{}", report.summary());
    for failure in &report.failures {
        eprintln!();
        eprintln!(
            "case {} (seed {:#x}) disagrees with oracle `{}`: {}",
            failure.case_index,
            config.seed,
            failure.oracle.name(),
            failure.detail
        );
        eprintln!("shrunk in {} step(s) to this repro:", failure.shrink_steps);
        eprint!("{}", failure.repro_sg);
    }
    let json = report.to_json();
    match out_path {
        Some(path) => std::fs::write(path, &json)
            .map_err(|e| CliError::failure(format!("writing {path}: {e}")))?,
        None => print!("{json}"),
    }
    if report.is_ok() {
        Ok(())
    } else if report.failures.is_empty() {
        Err(CliError::failure(format!(
            "{}/{} injected fault(s) went undetected",
            report.faults_injected - report.faults_detected,
            report.faults_injected
        )))
    } else {
        Err(CliError::failure(format!(
            "{} oracle disagreement(s)",
            report.failures.len()
        )))
    }
}

/// Runs the HTTP daemon until a `POST /shutdown` drains it.
fn serve(
    values: &[(&str, &str)],
    threads: Option<&str>,
    cache: &Option<Arc<dyn Cache>>,
) -> Result<(), CliError> {
    let mut config = simc::serve::ServeConfig { cache: cache.clone(), ..Default::default() };
    if let Some(value) = threads {
        let parsed = parse_u64(value).ok_or_else(|| {
            CliError::usage(format!("--threads needs an unsigned integer, got `{value}`"))
        })?;
        if parsed == 0 {
            return Err(CliError::usage("--threads must be at least 1".to_string()));
        }
        config.workers = parsed as usize;
    }
    for &(flag, value) in values {
        match flag {
            "--addr" => config.addr = value.to_string(),
            "--port" => {
                let port: u16 = value.parse().map_err(|_| {
                    CliError::usage(format!("--port needs a port number, got `{value}`"))
                })?;
                config.addr = format!("127.0.0.1:{port}");
            }
            "--queue" => {
                let parsed = parse_u64(value).ok_or_else(|| {
                    CliError::usage(format!("--queue needs an unsigned integer, got `{value}`"))
                })?;
                if parsed == 0 {
                    return Err(CliError::usage("--queue must be at least 1".to_string()));
                }
                config.queue_capacity = parsed as usize;
            }
            _ => unreachable!("only serve value flags reach here"),
        }
    }
    let addr = config.addr.clone();
    let server = simc::serve::Server::start(config)
        .map_err(|e| CliError::failure(format!("binding {addr}: {e}")))?;
    // Announce the bound (possibly ephemeral) port on stdout and flush:
    // drivers like `loadgen` block on this line to learn the address.
    println!("listening on http://{}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
    Ok(())
}

/// A loaded specification: raw text, or an already-built state graph
/// (the built-in benchmark fallback).
enum Spec {
    Text(String),
    Sg(StateGraph),
}

/// Loads a spec argument: `-` is stdin, a readable file is its text, and
/// `benchmarks/<name>` falls back to the built-in Table 1 suite.
fn load_spec(path: Option<&String>) -> Result<(Spec, String), CliError> {
    let path = path.ok_or_else(|| CliError::usage(usage()))?;
    if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| CliError::usage(format!("reading stdin: {e}")))?;
        return Ok((Spec::Text(buffer), path.clone()));
    }
    match std::fs::read_to_string(path) {
        Ok(text) => Ok((Spec::Text(text), path.clone())),
        // Fall back to the built-in Table 1 suite: `benchmarks/<name>`
        // works without the specs existing on disk.
        Err(e) => match builtin_benchmark(path) {
            Some(stg) => {
                let sg = stg
                    .to_state_graph()
                    .map_err(|e| CliError::usage(format!("reachability of {path}: {e}")))?;
                Ok((Spec::Sg(sg), path.clone()))
            }
            None => Err(CliError::usage(format!("reading {path}: {e}"))),
        },
    }
}

/// Builds a pipeline for a spec argument and eagerly elaborates it so
/// parse errors carry the spec path and exit 2.
fn pipeline_for(
    path: Option<&String>,
    target: Target,
    cache: &Option<Arc<dyn Cache>>,
) -> Result<Pipeline, CliError> {
    let (spec, label) = load_spec(path)?;
    pipeline_from_spec(spec, &label, target, cache)
}

/// Builds and eagerly elaborates a pipeline from an already-loaded spec
/// (see [`pipeline_for`]; `simc convert` loads the spec itself so it can
/// sniff EDIF inputs first).
fn pipeline_from_spec(
    spec: Spec,
    label: &str,
    target: Target,
    cache: &Option<Arc<dyn Cache>>,
) -> Result<Pipeline, CliError> {
    let mut pipeline = match spec {
        Spec::Text(text) => Pipeline::from_text(text),
        Spec::Sg(sg) => Pipeline::from_sg(sg),
    };
    pipeline = pipeline.with_target(target);
    if let Some(cache) = cache {
        pipeline = pipeline.with_cache(Arc::clone(cache));
    }
    pipeline
        .elaborated()
        .map_err(|e| cli_error(e, &format!("parsing {label}")))?;
    Ok(pipeline)
}

/// Resolves `benchmarks/<name>` (or a bare suite name) against the
/// built-in reconstructed Table 1 suite and the large scale family.
/// Scale members resolve by name only — `benchmarks/*` in a batch
/// manifest deliberately expands to the suite alone, so routine batches
/// stay cheap.
fn builtin_benchmark(path: &str) -> Option<simc::stg::Stg> {
    let name = path.strip_prefix("benchmarks/").unwrap_or(path);
    if let Some(b) = simc::benchmarks::suite::all().into_iter().find(|b| b.name == name) {
        return Some(b.stg);
    }
    simc::benchmarks::scale::all()
        .into_iter()
        .find(|b| b.name == name)
        .map(|b| b.stg)
}

/// The elaborated stage of a pipeline built by [`pipeline_for`].
///
/// `pipeline_for` already elaborated eagerly, so this re-fetch is served
/// from the memo and cannot fail in practice — but a failure must still
/// be a diagnostic with exit 2, never a panic (a panicking front end
/// takes a whole `simc serve` worker down with it; the CLI contract is
/// the same one the daemon maps to HTTP statuses).
fn elaborated(pipeline: &mut Pipeline) -> Result<&simc::Elaborated, CliError> {
    pipeline.elaborated().map_err(|e| cli_error(e, "elaboration"))
}

/// Writes a Graphviz export when `--dot <path>` was given; the render
/// closure only runs when needed.
fn write_dot(path: Option<&str>, render: impl FnOnce() -> String) -> Result<(), CliError> {
    let Some(path) = path else { return Ok(()) };
    std::fs::write(path, render())
        .map_err(|e| CliError::failure(format!("writing {path}: {e}")))
}

fn analyze(mut pipeline: Pipeline) -> Result<(), CliError> {
    let sg = elaborated(&mut pipeline)?.sg().clone();
    println!("states: {}", sg.state_count());
    println!("edges:  {}", sg.edge_count());
    let inputs: Vec<&str> = sg
        .input_signals()
        .iter()
        .map(|&s| sg.signal(s).name())
        .collect();
    let outputs: Vec<&str> = sg
        .non_input_signals()
        .iter()
        .map(|&s| sg.signal(s).name())
        .collect();
    println!("inputs: {}", inputs.join(" "));
    println!("non-inputs: {}", outputs.join(" "));
    let analysis = sg.analysis();
    println!("semi-modular: {}", analysis.is_semimodular());
    println!("output semi-modular: {}", analysis.is_output_semimodular());
    println!("output distributive: {}", analysis.is_output_distributive());
    println!("CSC: {}", analysis.has_csc());
    println!("USC: {}", analysis.has_usc());
    let regions = pipeline.regioned().map_err(|e| cli_error(e, "region analysis"))?.regions();
    println!("excitation regions: {}", regions.er_count());
    println!("output persistent: {}", regions.is_output_persistent(&sg));
    let report = pipeline.covered().map_err(|e| cli_error(e, "cover check"))?.report();
    println!(
        "MC requirement: {}",
        if report.satisfied() { "satisfied" } else { "VIOLATED" }
    );
    print!("{}", report.render(&sg));
    Ok(())
}

fn reduce(mut pipeline: Pipeline) -> Result<(), CliError> {
    let before = elaborated(&mut pipeline)?.sg().state_count();
    let implemented = pipeline.implemented().map_err(|e| cli_error(e, "MC-reduction"))?;
    println!(
        "inserted {} signal(s); {} -> {} states",
        implemented.added_signals(),
        before,
        implemented.working_sg().state_count()
    );
    for line in implemented.reduce_log() {
        println!("  {line}");
    }
    println!();
    print!("{}", implemented.working_report().render(implemented.working_sg()));
    Ok(())
}

/// Prints the insertion note `verify`/`synth` emit when the spec needed
/// MC-reduction.
fn note_insertions(added: usize) {
    if added > 0 {
        eprintln!("note: inserted {added} state signal(s) to satisfy MC");
    }
}

fn synth(
    mut pipeline: Pipeline,
    target: Target,
    flags: &[&str],
    dot_path: Option<&str>,
) -> Result<(), CliError> {
    if flags.contains(&"--complex") {
        // Complex-gate style: CSC suffices, no insertion needed.
        let sg = elaborated(&mut pipeline)?.sg();
        let netlist = simc::mc::complex::synthesize_complex(sg)
            .map_err(|e| CliError::failure(e.to_string()))?;
        write_dot(dot_path, || render_dot(&Artifact::Netlist(&netlist)))?;
        if flags.contains(&"--verilog") {
            print!("{}", simc::netlist::primitive_library());
            print!("{}", simc::netlist::to_verilog(&netlist, "simc_top"));
        } else {
            println!("(one atomic complex gate per output; see --verilog for the functions)");
        }
        eprintln!("{}", netlist.stats());
        return Ok(());
    }
    if flags.contains(&"--baseline") {
        // The baseline route deliberately skips MC-reduction: it fails
        // (exit 1) exactly where Beerel–Meng-style synthesis would.
        let sg = elaborated(&mut pipeline)?.sg();
        let implementation =
            synthesize_baseline(sg, target).map_err(|e| CliError::failure(e.to_string()))?;
        let netlist = implementation
            .to_netlist()
            .map_err(|e| CliError::failure(e.to_string()))?;
        write_dot(dot_path, || render_dot(&Artifact::Netlist(&netlist)))?;
        if flags.contains(&"--verilog") {
            print!("{}", simc::netlist::primitive_library());
            print!("{}", simc::netlist::to_verilog(&netlist, "simc_top"));
        } else {
            print!("{}", implementation.equations());
        }
        eprintln!("{}", netlist.stats());
        return Ok(());
    }
    let implemented = pipeline.implemented().map_err(|e| cli_error(e, "synthesis"))?;
    note_insertions(implemented.added_signals());
    if flags.contains(&"--share") {
        let implementation = synthesize_generalized(implemented.working_sg(), target)
            .map_err(|e| CliError::failure(e.to_string()))?;
        let netlist = implementation
            .to_netlist()
            .map_err(|e| CliError::failure(e.to_string()))?;
        write_dot(dot_path, || render_dot(&Artifact::Netlist(&netlist)))?;
        if flags.contains(&"--verilog") {
            print!("{}", simc::netlist::primitive_library());
            print!("{}", simc::netlist::to_verilog(&netlist, "simc_top"));
        } else {
            print!("{}", implementation.equations());
        }
        eprintln!("{}", netlist.stats());
        return Ok(());
    }
    write_dot(dot_path, || render_dot(&Artifact::Netlist(implemented.netlist())))?;
    if flags.contains(&"--verilog") {
        print!("{}", simc::netlist::primitive_library());
        print!("{}", simc::netlist::to_verilog(implemented.netlist(), "simc_top"));
    } else {
        print!("{}", implemented.implementation().equations());
    }
    eprintln!("{}", implemented.netlist().stats());
    Ok(())
}

fn do_verify(
    mut pipeline: Pipeline,
    target: Target,
    flags: &[&str],
    dot_path: Option<&str>,
) -> Result<(), CliError> {
    if flags.contains(&"--complex") {
        let sg = elaborated(&mut pipeline)?.sg();
        let netlist = simc::mc::complex::synthesize_complex(sg)
            .map_err(|e| CliError::failure(e.to_string()))?;
        write_dot(dot_path, || render_dot(&Artifact::Netlist(&netlist)))?;
        let report = verify(&netlist, sg, VerifyOptions::default())
            .map_err(|e| CliError::failure(e.to_string()))?;
        println!(
            "{} ({} composed states explored)",
            if report.is_ok() { "hazard-free" } else { "HAZARDOUS" },
            report.explored
        );
        return if report.is_ok() {
            Ok(())
        } else {
            Err(CliError::failure(format!("{} violation(s) found", report.violations.len())))
        };
    }
    if flags.contains(&"--baseline") || flags.contains(&"--share") {
        // The alternative synthesis routes are not pipeline stages; run
        // the verifier directly against their netlists.
        let (implementation, working) = if flags.contains(&"--baseline") {
            let sg = elaborated(&mut pipeline)?.sg().clone();
            let implementation =
                synthesize_baseline(&sg, target).map_err(|e| CliError::failure(e.to_string()))?;
            (implementation, sg)
        } else {
            let implemented = pipeline.implemented().map_err(|e| cli_error(e, "synthesis"))?;
            note_insertions(implemented.added_signals());
            let implementation = synthesize_generalized(implemented.working_sg(), target)
                .map_err(|e| CliError::failure(e.to_string()))?;
            (implementation, implemented.working_sg().clone())
        };
        let netlist = implementation
            .to_netlist()
            .map_err(|e| CliError::failure(e.to_string()))?;
        write_dot(dot_path, || render_dot(&Artifact::Netlist(&netlist)))?;
        let report = verify(&netlist, &working, VerifyOptions::default())
            .map_err(|e| CliError::failure(e.to_string()))?;
        println!(
            "{} ({} composed states explored)",
            if report.is_ok() { "hazard-free" } else { "HAZARDOUS" },
            report.explored
        );
        for violation in &report.violations {
            println!("  {}", report.describe(&netlist, &working, violation));
        }
        return if report.is_ok() {
            Ok(())
        } else {
            Err(CliError::failure(format!("{} violation(s) found", report.violations.len())))
        };
    }
    let implemented = pipeline.implemented().map_err(|e| cli_error(e, "synthesis"))?;
    note_insertions(implemented.added_signals());
    // Export before the verdict so hazardous repros stay inspectable.
    let rendered = dot_path.is_some().then(|| render_dot(&Artifact::Netlist(implemented.netlist())));
    if let Some(rendered) = rendered {
        write_dot(dot_path, || rendered)?;
    }
    let verified = pipeline.verified().map_err(|e| cli_error(e, "verification"))?;
    println!(
        "{} ({} composed states explored)",
        if verified.is_ok() { "hazard-free" } else { "HAZARDOUS" },
        verified.explored()
    );
    for violation in verified.violations() {
        println!("  {violation}");
    }
    if verified.is_ok() {
        Ok(())
    } else {
        Err(CliError::failure(format!("{} violation(s) found", verified.violations().len())))
    }
}

/// One batch job: a spec reference plus its synthesis target.
struct BatchJob {
    spec: String,
    target: Target,
}

/// The outcome of one batch job, ready for JSON rendering.
struct JobOutcome {
    spec: String,
    target: Target,
    result: Result<JobMetrics, (ErrorKind, String)>,
}

/// Synthesis and verification metrics of a successful job.
struct JobMetrics {
    states: usize,
    working_states: usize,
    added: usize,
    mc_satisfied: bool,
    cubes: usize,
    literals: u32,
    and_gates: usize,
    or_gates: usize,
    latch_rails: usize,
    other_gates: usize,
    verified: bool,
    explored: usize,
    violations: usize,
}

fn batch(
    manifest: Option<&String>,
    default_target: Target,
    cache: &Option<Arc<dyn Cache>>,
    threads: Option<&str>,
    out_path: Option<&str>,
) -> Result<(), CliError> {
    let manifest_path = manifest.ok_or_else(|| CliError::usage(usage()))?;
    let threads = match threads {
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Some(value) => {
            let parsed = parse_u64(value).ok_or_else(|| {
                CliError::usage(format!("--threads needs an unsigned integer, got `{value}`"))
            })?;
            if parsed == 0 {
                return Err(CliError::usage("--threads must be at least 1".to_string()));
            }
            parsed as usize
        }
    };
    let text = std::fs::read_to_string(manifest_path)
        .map_err(|e| CliError::usage(format!("reading {manifest_path}: {e}")))?;
    let jobs = parse_manifest(&text, manifest_path, default_target)?;
    let outcomes = parallel_map(&jobs, threads, |job| run_job(job, cache));
    let ok = outcomes.iter().filter(|o| o.result.as_ref().is_ok_and(|m| m.verified)).count();
    let failed = outcomes.len() - ok;
    let json = render_batch_json(manifest_path, &outcomes);
    match out_path {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| CliError::failure(format!("writing {path}: {e}")))?;
            eprintln!("batch: {ok}/{} job(s) ok; summary written to {path}", outcomes.len());
        }
        None => print!("{json}"),
    }
    if failed == 0 {
        Ok(())
    } else {
        Err(CliError::failure(format!("{failed} of {} batch job(s) failed", outcomes.len())))
    }
}

/// Parses a batch manifest: one spec per line, `#` comments, optional
/// per-line `--rs`, and `benchmarks/*` expanding the built-in suite.
fn parse_manifest(
    text: &str,
    path: &str,
    default_target: Target,
) -> Result<Vec<BatchJob>, CliError> {
    let mut jobs = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut spec: Option<&str> = None;
        let mut target = default_target;
        for token in line.split_whitespace() {
            match token {
                "--rs" => target = Target::RsLatch,
                "--celement" => target = Target::CElement,
                token if token.starts_with("--") => {
                    return Err(CliError::usage(format!(
                        "{path} line {}: unknown option `{token}`",
                        index + 1
                    )));
                }
                token => {
                    if spec.is_some() {
                        return Err(CliError::usage(format!(
                            "{path} line {}: more than one spec on a line",
                            index + 1
                        )));
                    }
                    spec = Some(token);
                }
            }
        }
        let spec = spec.ok_or_else(|| {
            CliError::usage(format!("{path} line {}: no spec named", index + 1))
        })?;
        if spec == "-" {
            return Err(CliError::usage(format!(
                "{path} line {}: stdin (`-`) is not valid in a manifest",
                index + 1
            )));
        }
        if spec == "benchmarks/*" {
            jobs.extend(simc::benchmarks::suite::all().into_iter().map(|b| BatchJob {
                spec: format!("benchmarks/{}", b.name),
                target,
            }));
        } else {
            jobs.push(BatchJob { spec: spec.to_string(), target });
        }
    }
    if jobs.is_empty() {
        return Err(CliError::usage(format!("{path}: manifest names no jobs")));
    }
    Ok(jobs)
}

/// Runs one batch job through the full pipeline. Parallelism is across
/// jobs, so each job's pipeline is single-threaded; the shared cache
/// still deduplicates work between isomorphic jobs.
fn run_job(job: &BatchJob, cache: &Option<Arc<dyn Cache>>) -> JobOutcome {
    let outcome = |result| JobOutcome { spec: job.spec.clone(), target: job.target, result };
    let spec = match load_spec(Some(&job.spec)) {
        Ok((spec, _)) => spec,
        Err(CliError::Usage(m)) | Err(CliError::Failure(m)) => {
            return outcome(Err((ErrorKind::Parse, m)));
        }
    };
    let mut pipeline = match spec {
        Spec::Text(text) => Pipeline::from_text(text),
        Spec::Sg(sg) => Pipeline::from_sg(sg),
    };
    pipeline = pipeline.with_target(job.target).with_threads(1);
    if let Some(cache) = cache {
        pipeline = pipeline.with_cache(Arc::clone(cache));
    }
    let run = |pipeline: &mut Pipeline| -> Result<JobMetrics, simc::Error> {
        let states = pipeline.elaborated()?.sg().state_count();
        let mc_satisfied = pipeline.covered()?.report().satisfied();
        let implemented = pipeline.implemented()?;
        let working_states = implemented.working_sg().state_count();
        let added = implemented.added_signals();
        let cubes = implemented.implementation().cube_count();
        let literals = implemented.implementation().literal_count();
        let stats = implemented.netlist().stats();
        let (and_gates, or_gates, latch_rails, other_gates) =
            (stats.and_gates, stats.or_gates, stats.latch_rails, stats.other_gates);
        let verified = pipeline.verified()?;
        Ok(JobMetrics {
            states,
            working_states,
            added,
            mc_satisfied,
            cubes,
            literals,
            and_gates,
            or_gates,
            latch_rails,
            other_gates,
            verified: verified.is_ok(),
            explored: verified.explored(),
            violations: verified.violations().len(),
        })
    };
    outcome(run(&mut pipeline).map_err(|e| (e.kind(), e.to_string())))
}

fn target_name(target: Target) -> &'static str {
    match target {
        Target::CElement => "c-element",
        Target::RsLatch => "rs-latch",
    }
}

/// Renders the deterministic batch summary (no timings, stable order).
fn render_batch_json(manifest_path: &str, outcomes: &[JobOutcome]) -> String {
    use std::fmt::Write as _;
    let escape = simc::obs::json::escape;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"manifest\": {},", escape(manifest_path));
    let ok = outcomes.iter().filter(|o| o.result.as_ref().is_ok_and(|m| m.verified)).count();
    let _ = writeln!(out, "  \"jobs_total\": {},", outcomes.len());
    let _ = writeln!(out, "  \"jobs_ok\": {},", ok);
    let _ = writeln!(out, "  \"jobs_failed\": {},", outcomes.len() - ok);
    out.push_str("  \"jobs\": [\n");
    for (index, outcome) in outcomes.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(out, "\"spec\": {}, ", escape(&outcome.spec));
        let _ = write!(out, "\"target\": {}, ", escape(target_name(outcome.target)));
        match &outcome.result {
            Ok(m) => {
                let _ = write!(
                    out,
                    "\"status\": \"ok\", \"states\": {}, \"working_states\": {}, \
                     \"added_signals\": {}, \"mc_satisfied\": {}, \"cubes\": {}, \
                     \"literals\": {}, \"and_gates\": {}, \"or_gates\": {}, \
                     \"latch_rails\": {}, \"other_gates\": {}, \"verified\": {}, \
                     \"explored\": {}, \"violations\": {}",
                    m.states,
                    m.working_states,
                    m.added,
                    m.mc_satisfied,
                    m.cubes,
                    m.literals,
                    m.and_gates,
                    m.or_gates,
                    m.latch_rails,
                    m.other_gates,
                    m.verified,
                    m.explored,
                    m.violations
                );
            }
            Err((kind, message)) => {
                let _ = write!(
                    out,
                    "\"status\": \"error\", \"kind\": {}, \"error\": {}",
                    escape(&kind.to_string()),
                    escape(message)
                );
            }
        }
        out.push('}');
        if index + 1 < outcomes.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}
