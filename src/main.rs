//! `simc` — command-line front end for the synthesis flow.
//!
//! ```text
//! simc analyze <spec.g>                 reachability, properties, MC report
//! simc reduce  <spec.g>                 insert state signals until MC holds
//! simc synth   <spec.g> [--rs] [--baseline] [--share] [--complex] [--verilog]
//! simc verify  <spec.g> [--rs] [--baseline]             full flow + verdict
//! simc dot     <spec.g>                 Graphviz of the state graph
//! simc fuzz    [--seed <n>] [--iters <n>] [--threads <n>]   differential fuzzing
//! ```
//!
//! `<spec>` is an STG in the SIS/petrify `.g` format or a state graph in
//! the `.sg` format (auto-detected via `.state graph`); `-` reads stdin;
//! `benchmarks/<name>` resolves a member of the built-in Table 1 suite
//! when no such file exists on disk.
//!
//! Every subcommand accepts `--stats` (pipeline counters and phase
//! timings on stderr) and `--stats-json <path>` (the same report as a
//! JSON document).
//!
//! Exit codes: `0` success, `1` operational failure (hazards found, CSC
//! violation, oracle disagreement), `2` usage error or malformed input.

use std::io::Read;
use std::process::ExitCode;

use simc::mc::assign::{reduce_to_mc, ReduceOptions};
use simc::mc::baseline::synthesize_baseline;
use simc::mc::gen::synthesize_generalized;
use simc::mc::synth::{synthesize, Implementation, Target};
use simc::mc::McCheck;
use simc::netlist::{verify, VerifyOptions};
use simc::sg::StateGraph;
use simc::stg::parse_g;

/// A CLI failure carrying its exit code.
enum CliError {
    /// Exit 2: bad invocation or malformed input — the request never made
    /// sense, rerunning it unchanged cannot succeed.
    Usage(String),
    /// Exit 1: a well-formed request whose answer is negative — hazards
    /// found, a property violated, a search that gave up.
    Failure(String),
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError::Usage(message.into())
    }

    fn failure(message: impl Into<String>) -> Self {
        CliError::Failure(message.into())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Failure(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

/// Flags that take no argument, valid on every subcommand.
const KNOWN_FLAGS: &[&str] =
    &["--rs", "--baseline", "--share", "--complex", "--verilog", "--stats"];

/// Flags that take a value, only meaningful for `simc fuzz`.
const FUZZ_VALUE_FLAGS: &[&str] = &["--seed", "--iters", "--threads"];

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::usage(usage()));
    };
    // `fuzz` takes no spec argument; every other command does.
    let rest_from = if command == "fuzz" { 1 } else { 2 };
    let rest = args.get(rest_from..).unwrap_or_default();
    let mut flags: Vec<&str> = Vec::new();
    let mut stats_json: Option<&str> = None;
    let mut fuzz_values: Vec<(&str, &str)> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let arg = rest[i].as_str();
        if arg == "--stats-json" {
            i += 1;
            stats_json = Some(rest.get(i).ok_or_else(|| {
                CliError::usage(format!("--stats-json needs a file path\n{}", usage()))
            })?);
        } else if FUZZ_VALUE_FLAGS.contains(&arg) {
            if command != "fuzz" {
                return Err(CliError::usage(format!(
                    "`{arg}` is only valid with `simc fuzz`\n{}",
                    usage()
                )));
            }
            i += 1;
            let value = rest.get(i).ok_or_else(|| {
                CliError::usage(format!("{arg} needs a value\n{}", usage()))
            })?;
            fuzz_values.push((arg, value));
        } else if KNOWN_FLAGS.contains(&arg) {
            flags.push(arg);
        } else {
            return Err(CliError::usage(format!("unknown flag `{arg}`\n{}", usage())));
        }
        i += 1;
    }
    let stats = flags.contains(&"--stats") || stats_json.is_some();
    if stats {
        simc::obs::set_stats(true);
    }
    let target = if flags.contains(&"--rs") { Target::RsLatch } else { Target::CElement };
    let result = match command.as_str() {
        "analyze" => analyze(&load(args.get(1))?),
        "reduce" => reduce(&load(args.get(1))?),
        "synth" => synth(&load(args.get(1))?, target, &flags),
        "verify" => do_verify(&load(args.get(1))?, target, &flags),
        "dot" => load(args.get(1)).map(|sg| println!("{}", sg.to_dot())),
        "fuzz" => fuzz(&fuzz_values),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown command `{other}`\n{}", usage()))),
    };
    if stats {
        let report = simc::obs::report();
        eprint!("{}", report.render());
        if let Some(path) = stats_json {
            std::fs::write(path, report.to_json())
                .map_err(|e| CliError::failure(format!("writing {path}: {e}")))?;
        }
    }
    result
}

fn usage() -> String {
    "usage: simc <analyze|reduce|synth|verify|dot> <spec.g|spec.sg|benchmarks/<name>|-> \
     [--rs] [--baseline] [--share] [--complex] [--verilog] \
     [--stats] [--stats-json <path>]\n       \
     simc fuzz [--seed <n>] [--iters <n>] [--threads <n>] [--stats]"
        .to_string()
}

/// Parses a decimal or `0x`-prefixed hexadecimal u64.
fn parse_u64(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn fuzz(values: &[(&str, &str)]) -> Result<(), CliError> {
    let mut config = simc::fuzz::FuzzConfig::default();
    for &(flag, value) in values {
        let parsed = parse_u64(value).ok_or_else(|| {
            CliError::usage(format!("{flag} needs an unsigned integer, got `{value}`"))
        })?;
        match flag {
            "--seed" => config.seed = parsed,
            "--iters" => config.iters = parsed,
            "--threads" => {
                if parsed == 0 {
                    return Err(CliError::usage("--threads must be at least 1".to_string()));
                }
                config.threads = parsed as usize;
            }
            _ => unreachable!("only fuzz value flags reach here"),
        }
    }
    let report = simc::fuzz::run(config);
    println!("{}", report.summary());
    for failure in &report.failures {
        println!();
        println!(
            "case {} (seed {:#x}) disagrees with oracle `{}`: {}",
            failure.case_index,
            config.seed,
            failure.oracle.name(),
            failure.detail
        );
        println!("shrunk in {} step(s) to this repro:", failure.shrink_steps);
        print!("{}", failure.repro_sg);
    }
    if report.is_ok() {
        Ok(())
    } else if report.failures.is_empty() {
        Err(CliError::failure(format!(
            "{}/{} injected fault(s) went undetected",
            report.faults_injected - report.faults_detected,
            report.faults_injected
        )))
    } else {
        Err(CliError::failure(format!(
            "{} oracle disagreement(s)",
            report.failures.len()
        )))
    }
}

fn load(path: Option<&String>) -> Result<StateGraph, CliError> {
    let path = path.ok_or_else(|| CliError::usage(usage()))?;
    let text = if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| CliError::usage(format!("reading stdin: {e}")))?;
        buffer
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            // Fall back to the built-in Table 1 suite: `benchmarks/<name>`
            // works without the specs existing on disk.
            Err(e) => match builtin_benchmark(path) {
                Some(stg) => {
                    return stg
                        .to_state_graph()
                        .map_err(|e| CliError::usage(format!("reachability of {path}: {e}")))
                }
                None => return Err(CliError::usage(format!("reading {path}: {e}"))),
            },
        }
    };
    if text.contains(".state graph") {
        return simc::sg::parse_sg(&text)
            .map_err(|e| CliError::usage(format!("parsing {path}: {e}")));
    }
    let stg = parse_g(&text).map_err(|e| CliError::usage(format!("parsing {path}: {e}")))?;
    stg.to_state_graph()
        .map_err(|e| CliError::usage(format!("reachability of {path}: {e}")))
}

/// Resolves `benchmarks/<name>` (or a bare suite name) against the
/// built-in reconstructed Table 1 suite.
fn builtin_benchmark(path: &str) -> Option<simc::stg::Stg> {
    let name = path.strip_prefix("benchmarks/").unwrap_or(path);
    simc::benchmarks::suite::all()
        .into_iter()
        .find(|b| b.name == name)
        .map(|b| b.stg)
}

fn analyze(sg: &StateGraph) -> Result<(), CliError> {
    println!("states: {}", sg.state_count());
    println!("edges:  {}", sg.edge_count());
    let inputs: Vec<&str> = sg
        .input_signals()
        .iter()
        .map(|&s| sg.signal(s).name())
        .collect();
    let outputs: Vec<&str> = sg
        .non_input_signals()
        .iter()
        .map(|&s| sg.signal(s).name())
        .collect();
    println!("inputs: {}", inputs.join(" "));
    println!("non-inputs: {}", outputs.join(" "));
    let analysis = sg.analysis();
    println!("semi-modular: {}", analysis.is_semimodular());
    println!("output semi-modular: {}", analysis.is_output_semimodular());
    println!("output distributive: {}", analysis.is_output_distributive());
    println!("CSC: {}", analysis.has_csc());
    println!("USC: {}", analysis.has_usc());
    let regions = sg.regions();
    println!("excitation regions: {}", regions.er_count());
    println!("output persistent: {}", regions.is_output_persistent(sg));
    let report = McCheck::new(sg).report();
    println!(
        "MC requirement: {}",
        if report.satisfied() { "satisfied" } else { "VIOLATED" }
    );
    print!("{}", report.render(sg));
    Ok(())
}

fn reduce(sg: &StateGraph) -> Result<(), CliError> {
    let result = reduce_to_mc(sg, ReduceOptions::default())
        .map_err(|e| CliError::failure(e.to_string()))?;
    println!(
        "inserted {} signal(s); {} -> {} states",
        result.added,
        sg.state_count(),
        result.sg.state_count()
    );
    for line in &result.log {
        println!("  {line}");
    }
    println!();
    print!("{}", McCheck::new(&result.sg).report().render(&result.sg));
    Ok(())
}

fn reduced_or_original(sg: &StateGraph) -> Result<StateGraph, CliError> {
    if McCheck::new(sg).report().satisfied() {
        Ok(sg.clone())
    } else {
        let result = reduce_to_mc(sg, ReduceOptions::default())
            .map_err(|e| CliError::failure(e.to_string()))?;
        eprintln!("note: inserted {} state signal(s) to satisfy MC", result.added);
        Ok(result.sg)
    }
}

fn build(sg: &StateGraph, target: Target, flags: &[&str]) -> Result<Implementation, CliError> {
    if flags.contains(&"--baseline") {
        synthesize_baseline(sg, target).map_err(|e| CliError::failure(e.to_string()))
    } else if flags.contains(&"--share") {
        synthesize_generalized(sg, target).map_err(|e| CliError::failure(e.to_string()))
    } else {
        synthesize(sg, target).map_err(|e| CliError::failure(e.to_string()))
    }
}

fn synth(sg: &StateGraph, target: Target, flags: &[&str]) -> Result<(), CliError> {
    if flags.contains(&"--complex") {
        // Complex-gate style: CSC suffices, no insertion needed.
        let netlist = simc::mc::complex::synthesize_complex(sg)
            .map_err(|e| CliError::failure(e.to_string()))?;
        if flags.contains(&"--verilog") {
            print!("{}", simc::netlist::primitive_library());
            print!("{}", simc::netlist::to_verilog(&netlist, "simc_top"));
        } else {
            println!("(one atomic complex gate per output; see --verilog for the functions)");
        }
        eprintln!("{}", netlist.stats());
        return Ok(());
    }
    let working = if flags.contains(&"--baseline") {
        sg.clone()
    } else {
        reduced_or_original(sg)?
    };
    let implementation = build(&working, target, flags)?;
    let netlist = implementation
        .to_netlist()
        .map_err(|e| CliError::failure(e.to_string()))?;
    if flags.contains(&"--verilog") {
        print!("{}", simc::netlist::primitive_library());
        print!("{}", simc::netlist::to_verilog(&netlist, "simc_top"));
    } else {
        print!("{}", implementation.equations());
    }
    eprintln!("{}", netlist.stats());
    Ok(())
}

fn do_verify(sg: &StateGraph, target: Target, flags: &[&str]) -> Result<(), CliError> {
    if flags.contains(&"--complex") {
        let netlist = simc::mc::complex::synthesize_complex(sg)
            .map_err(|e| CliError::failure(e.to_string()))?;
        let report = verify(&netlist, sg, VerifyOptions::default())
            .map_err(|e| CliError::failure(e.to_string()))?;
        println!(
            "{} ({} composed states explored)",
            if report.is_ok() { "hazard-free" } else { "HAZARDOUS" },
            report.explored
        );
        return if report.is_ok() {
            Ok(())
        } else {
            Err(CliError::failure(format!("{} violation(s) found", report.violations.len())))
        };
    }
    let working = if flags.contains(&"--baseline") {
        sg.clone()
    } else {
        reduced_or_original(sg)?
    };
    let implementation = build(&working, target, flags)?;
    let netlist = implementation
        .to_netlist()
        .map_err(|e| CliError::failure(e.to_string()))?;
    let report = verify(&netlist, &working, VerifyOptions::default())
        .map_err(|e| CliError::failure(e.to_string()))?;
    println!(
        "{} ({} composed states explored)",
        if report.is_ok() { "hazard-free" } else { "HAZARDOUS" },
        report.explored
    );
    for violation in &report.violations {
        println!("  {}", report.describe(&netlist, &working, violation));
    }
    if report.is_ok() {
        Ok(())
    } else {
        Err(CliError::failure(format!("{} violation(s) found", report.violations.len())))
    }
}
