//! Integration tests of the content-addressed artifact cache: cached
//! and uncached pipeline runs must be byte-identical, under memory
//! pressure (LRU eviction) and on-disk persistence alike, and a
//! corrupted store must only ever cost recomputation, never correctness.

use std::path::PathBuf;
use std::sync::Arc;

use simc::benchmarks::figures;
use simc::prelude::*;

/// Everything observable about one full pipeline run, rendered to bytes.
#[derive(Debug, PartialEq, Eq)]
struct RunArtifacts {
    canonical_sg: String,
    mc_satisfied: bool,
    report_render: String,
    added_signals: usize,
    equations: String,
    verilog: String,
    verified: bool,
    explored: usize,
    violations: Vec<String>,
}

/// Drives a pipeline through every stage and captures its artifacts.
fn run_pipeline(mut pipeline: Pipeline) -> RunArtifacts {
    let canonical_sg = pipeline.elaborated().expect("elaborates").canonical_text().to_string();
    let covered = pipeline.covered().expect("covers");
    let mc_satisfied = covered.report().satisfied();
    let implemented = pipeline.implemented().expect("implements");
    let report_render =
        implemented.working_report().render(implemented.working_sg());
    let added_signals = implemented.added_signals();
    let equations = implemented.implementation().equations();
    let verilog = simc::netlist::to_verilog(implemented.netlist(), "simc_top");
    let verified = pipeline.verified().expect("verifies");
    RunArtifacts {
        canonical_sg,
        mc_satisfied,
        report_render,
        added_signals,
        equations,
        verilog,
        verified: verified.is_ok(),
        explored: verified.explored(),
        violations: verified.violations().to_vec(),
    }
}

/// The state graphs exercised: one MC-satisfying (no reduction) and one
/// MC-violating (reduction inserts a state signal).
fn subjects() -> Vec<(&'static str, StateGraph)> {
    vec![("toggle", figures::toggle()), ("figure4", figures::figure4())]
}

#[test]
fn cold_and_warm_runs_are_byte_identical() {
    for (name, sg) in subjects() {
        let plain = run_pipeline(Pipeline::from_sg(sg.clone()));
        let cache: Arc<dyn Cache> = Arc::new(MemCache::new(16 << 20));
        let cold =
            run_pipeline(Pipeline::from_sg(sg.clone()).with_cache(Arc::clone(&cache)));
        let warm = run_pipeline(Pipeline::from_sg(sg).with_cache(cache));
        assert_eq!(plain, cold, "{name}: cold cached run differs from uncached");
        assert_eq!(cold, warm, "{name}: warm cached run differs from cold");
    }
}

#[test]
fn thread_counts_do_not_change_cached_artifacts() {
    for (name, sg) in subjects() {
        let cache: Arc<dyn Cache> = Arc::new(MemCache::new(16 << 20));
        let baseline = run_pipeline(Pipeline::from_sg(sg.clone()).with_threads(1));
        for threads in [1usize, 2, 8] {
            let run = run_pipeline(
                Pipeline::from_sg(sg.clone())
                    .with_threads(threads)
                    .with_cache(Arc::clone(&cache)),
            );
            assert_eq!(baseline, run, "{name}: {threads}-thread cached run differs");
        }
    }
}

#[test]
fn lru_eviction_only_costs_recomputation() {
    for (name, sg) in subjects() {
        // A budget far below one artifact: every store is evicted almost
        // immediately, so later stages run against a cache that keeps
        // forgetting — results must not change.
        let tiny: Arc<dyn Cache> = Arc::new(MemCache::new(64));
        let plain = run_pipeline(Pipeline::from_sg(sg.clone()));
        let starved =
            run_pipeline(Pipeline::from_sg(sg.clone()).with_cache(Arc::clone(&tiny)));
        let starved_again = run_pipeline(Pipeline::from_sg(sg).with_cache(tiny));
        assert_eq!(plain, starved, "{name}: starved cache changed results");
        assert_eq!(starved, starved_again, "{name}: starved rerun changed results");
    }
}

/// A scratch directory removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir()
            .join(format!("simc-cache-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn disk_cache_round_trips_across_reopens() {
    let dir = TempDir::new("roundtrip");
    let sg = figures::figure4();
    let plain = run_pipeline(Pipeline::from_sg(sg.clone()));
    let cold = {
        let cache: Arc<dyn Cache> =
            Arc::new(DiskCache::new(dir.path()).expect("open disk cache"));
        run_pipeline(Pipeline::from_sg(sg.clone()).with_cache(cache))
    };
    // A fresh handle over the same directory — everything revives from
    // the on-disk entries written by the cold run.
    let warm = {
        let cache: Arc<dyn Cache> =
            Arc::new(DiskCache::new(dir.path()).expect("reopen disk cache"));
        run_pipeline(Pipeline::from_sg(sg).with_cache(cache))
    };
    assert_eq!(plain, cold, "cold disk-cached run differs from uncached");
    assert_eq!(cold, warm, "reopened disk cache changed results");
    let entries = std::fs::read_dir(dir.path()).expect("read cache dir").count();
    assert!(entries > 0, "cold run wrote no cache entries");
}

#[test]
fn corrupted_disk_entries_are_treated_as_misses() {
    let dir = TempDir::new("corrupt");
    let sg = figures::figure4();
    let cold = {
        let cache: Arc<dyn Cache> =
            Arc::new(DiskCache::new(dir.path()).expect("open disk cache"));
        run_pipeline(Pipeline::from_sg(sg.clone()).with_cache(cache))
    };
    // Flip one payload byte in every entry; half-truncate every second.
    let mut corrupted = 0usize;
    for entry in std::fs::read_dir(dir.path()).expect("read cache dir") {
        let path = entry.expect("dir entry").path();
        let mut bytes = std::fs::read(&path).expect("read entry");
        if corrupted.is_multiple_of(2) {
            let last = bytes.len() - 1;
            bytes[last] ^= 0x40;
        } else {
            bytes.truncate(bytes.len() / 2);
        }
        std::fs::write(&path, &bytes).expect("write corrupted entry");
        corrupted += 1;
    }
    assert!(corrupted > 0, "no entries to corrupt");
    let recovered = {
        let cache: Arc<dyn Cache> =
            Arc::new(DiskCache::new(dir.path()).expect("reopen disk cache"));
        run_pipeline(Pipeline::from_sg(sg).with_cache(cache))
    };
    assert_eq!(cold, recovered, "corrupted cache entries changed results");
}

#[test]
fn torn_writes_degrade_to_misses_and_reheal() {
    // A crash mid-write must never surface as bad artifacts. Two crash
    // shapes: a stale temp file that was never renamed into place, and
    // an entry torn inside its framing header (the first bytes of the
    // file, where a truncation is hardest to tell from a short entry).
    let dir = TempDir::new("torn");
    let sg = figures::figure4();
    let cold = {
        let cache: Arc<dyn Cache> =
            Arc::new(DiskCache::new(dir.path()).expect("open disk cache"));
        run_pipeline(Pipeline::from_sg(sg.clone()).with_cache(cache))
    };
    let mut torn = 0usize;
    for entry in std::fs::read_dir(dir.path()).expect("read cache dir") {
        let path = entry.expect("dir entry").path();
        let bytes = std::fs::read(&path).expect("read entry");
        // Tear inside the `simc-cache.v1 <len> <checksum>` header line.
        std::fs::write(&path, &bytes[..8.min(bytes.len())]).expect("tear entry");
        torn += 1;
    }
    assert!(torn > 0, "no entries to tear");
    // A writer that died before its rename leaves its temp file behind.
    std::fs::write(dir.path().join(".tmp-deadbeef-99999-0"), b"partial")
        .expect("plant stale temp");
    let recovered = {
        let cache: Arc<dyn Cache> =
            Arc::new(DiskCache::new(dir.path()).expect("reopen torn cache"));
        run_pipeline(Pipeline::from_sg(sg.clone()).with_cache(cache))
    };
    assert_eq!(cold, recovered, "torn cache entries changed results");
    // The recovery run re-stored every artifact, so a third run revives
    // from whole entries again.
    let healed = {
        let cache: Arc<dyn Cache> =
            Arc::new(DiskCache::new(dir.path()).expect("reopen healed cache"));
        run_pipeline(Pipeline::from_sg(sg).with_cache(cache))
    };
    assert_eq!(recovered, healed, "healed cache changed results");
}

#[test]
fn text_and_sg_sources_share_cached_artifacts() {
    // An isomorphic `.sg` rendering with different state numbering and a
    // different model name must hit the artifacts the SG-sourced run
    // cached, because both canonicalize to the same form.
    let sg = figures::figure4();
    let text = simc::sg::write_sg(&sg, "renamed_model");
    let cache: Arc<dyn Cache> = Arc::new(MemCache::new(16 << 20));
    let from_sg = run_pipeline(Pipeline::from_sg(sg).with_cache(Arc::clone(&cache)));
    let from_text = run_pipeline(Pipeline::from_text(text).with_cache(cache));
    assert_eq!(from_sg, from_text, "text- and sg-sourced runs diverged");
}
