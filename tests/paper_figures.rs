//! Integration tests pinning every claim the paper makes about its
//! figures, exercised through the public facade API.

use simc::benchmarks::figures;
use simc::mc::baseline::synthesize_baseline;
use simc::mc::synth::{synthesize, Target};
use simc::mc::{McCheck, McError};
use simc::netlist::{verify, VerifyOptions, ViolationKind};
use simc::sg::{Dir, Transition};

/// Section II's walkthrough of Figure 1: input conflict in the initial
/// state, output semi-modularity, output distributivity.
#[test]
fn figure1_behavioural_facts() {
    let sg = figures::figure1();
    let analysis = sg.analysis();
    assert!(!analysis.is_semimodular());
    assert!(analysis.is_output_semimodular());
    assert!(analysis.is_output_distributive());
    // "Thus 0*0*00 is a conflict state": all conflicts sit in the initial
    // state and involve only the inputs a and b.
    for conflict in analysis.conflicts() {
        assert_eq!(conflict.state, sg.initial());
        let name = sg.signal(conflict.victim).name();
        assert!(name == "a" || name == "b", "unexpected victim {name}");
    }
}

/// Section II-B: ER(+d1), its minimal state 100*0*, trigger +a, and the
/// non-persistency that drives Example 1.
#[test]
fn figure1_region_facts() {
    let sg = figures::figure1();
    let regions = sg.regions();
    let d = sg.signal_by_name("d").unwrap();
    let a = sg.signal_by_name("a").unwrap();
    let er = regions.ers_of_transition(Transition::rise(d))[0];
    let mins = regions.minimal_states(&sg, er);
    assert_eq!(mins.len(), 1);
    assert_eq!(sg.starred_code(mins[0]), "100*0*");
    let triggers = regions.triggers(&sg, er);
    assert_eq!(triggers.len(), 1);
    assert_eq!(sg.transition_name(triggers[0]), "+a");
    assert!(!regions.is_ordered(&sg, er, a), "a changes inside ER(+d1)");
    assert!(!regions.is_persistent_er(&sg, er));
}

/// Example 1: figure 1 has no MC implementation; the baseline needs at
/// least two cubes for Sd and is hazardous at gate level.
#[test]
fn example1_baseline_fails() {
    let sg = figures::figure1();
    assert!(matches!(
        synthesize(&sg, Target::CElement),
        Err(McError::NotMonotonous { .. })
    ));
    let baseline = synthesize_baseline(&sg, Target::CElement).unwrap();
    let d = sg.signal_by_name("d").unwrap();
    let sd = &baseline
        .networks()
        .iter()
        .find(|n| n.signal == d)
        .unwrap()
        .set;
    assert!(sd.cubes().len() >= 2, "ER(+d) cannot be covered by one cube");
    let netlist = baseline.to_netlist().unwrap();
    let verdict = verify(&netlist, &sg, VerifyOptions::default()).unwrap();
    assert!(verdict.hazards().count() > 0);
}

/// Figure 3 satisfies MC and reproduces equations (2): Sx = a'b'c',
/// Rx = a, d = x̄, and both standard implementations verify (Theorem 3).
#[test]
fn figure3_matches_equations_2() {
    let sg = figures::figure3();
    let report = McCheck::new(&sg).report();
    assert!(report.satisfied(), "{}", report.render(&sg));
    let implementation = synthesize(&sg, Target::CElement).unwrap();
    let eqs = implementation.equations();
    assert!(eqs.contains("Sx = a' b' c'"), "{eqs}");
    assert!(eqs.contains("Rx = a"), "{eqs}");
    assert!(eqs.contains("Sd = x'"), "{eqs}");
    assert!(eqs.contains("Rd = x"), "{eqs}");
    for target in [Target::CElement, Target::RsLatch] {
        let implementation = synthesize(&sg, target).unwrap();
        let netlist = implementation.to_netlist().unwrap();
        let verdict = verify(&netlist, &sg, VerifyOptions::default()).unwrap();
        assert!(verdict.is_ok(), "{target:?}: {:?}", verdict.violations);
    }
}

/// Theorem 4 and Corollary 1 on the MC-satisfying figures: MC implies CSC
/// and persistency.
#[test]
fn theorem4_and_corollary1() {
    for sg in [figures::toggle(), figures::c_element(), figures::figure3()] {
        let check = McCheck::new(&sg);
        assert!(check.report().satisfied());
        assert!(sg.analysis().has_csc());
        assert!(check.regions().is_output_persistent(&sg));
    }
}

/// Example 2 (Figure 4): persistent, accepted by the baseline, hazardous;
/// the MC requirement rejects it statically.
#[test]
fn example2_hazard_only_mc_catches() {
    let sg = figures::figure4();
    assert!(sg.regions().is_output_persistent(&sg));
    // Static: MC violated.
    let report = McCheck::new(&sg).report();
    assert!(!report.satisfied());
    // The violating function is Sb (up-function of the only output).
    let b = sg.signal_by_name("b").unwrap();
    assert!(report
        .violations()
        .any(|entry| entry.signal == b && entry.dir == Dir::Rise));
    // Dynamic: the baseline circuit has a disabling.
    let baseline = synthesize_baseline(&sg, Target::CElement).unwrap();
    let netlist = baseline.to_netlist().unwrap();
    let verdict = verify(&netlist, &sg, VerifyOptions::default()).unwrap();
    assert!(verdict
        .violations
        .iter()
        .any(|v| matches!(v.kind, ViolationKind::Disabled { .. })));
}

/// Theorem 2's contrapositive on our examples: all MC-satisfying specs
/// here are output distributive.
#[test]
fn mc_implies_distributivity_on_examples() {
    for sg in [figures::toggle(), figures::c_element(), figures::figure3()] {
        if McCheck::new(&sg).report().satisfied() {
            assert!(sg.analysis().is_output_distributive());
        }
    }
}
