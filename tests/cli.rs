//! Integration tests for the `simc` command-line binary.
//!
//! Exit-code contract: 0 = success, 1 = operational failure (hazards,
//! CSC violation, oracle disagreement), 2 = usage error or malformed
//! input.

use std::io::Write as _;
use std::process::{Command, Stdio};

const D_ELEMENT: &str = "
.model delement
.inputs r a2
.outputs a r2
.graph
r+ r2+
r2+ a2+
a2+ r2-
r2- a2-
a2- a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
";

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_simc"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    // The binary may exit (e.g. on a bad flag) before reading stdin;
    // a broken pipe here is not a test failure.
    let _ = child.stdin.as_mut().expect("stdin piped").write_all(stdin.as_bytes());
    let output = child.wait_with_output().expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.code().expect("binary not killed by signal"),
    )
}

#[test]
fn analyze_reports_properties() {
    let (stdout, _, code) = run_with_stdin(&["analyze", "-"], D_ELEMENT);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("states: 8"), "{stdout}");
    assert!(stdout.contains("CSC: false"), "{stdout}");
    assert!(stdout.contains("MC requirement: VIOLATED"), "{stdout}");
}

#[test]
fn reduce_inserts_one_signal() {
    let (stdout, _, code) = run_with_stdin(&["reduce", "-"], D_ELEMENT);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("inserted 1 signal"), "{stdout}");
}

#[test]
fn verify_passes_after_reduction() {
    let (stdout, stderr, code) = run_with_stdin(&["verify", "-"], D_ELEMENT);
    assert_eq!(code, 0, "{stdout} {stderr}");
    assert!(stdout.contains("hazard-free"), "{stdout}");
    assert!(stderr.contains("inserted 1 state signal"), "{stderr}");
}

#[test]
fn synth_prints_equations() {
    let (stdout, _, code) = run_with_stdin(&["synth", "-"], D_ELEMENT);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("Sa"), "{stdout}");
    assert!(stdout.contains("= S"), "{stdout}");
}

#[test]
fn baseline_fails_on_csc_conflict() {
    // A well-formed spec the baseline cannot implement: an *operational*
    // failure, exit 1 — not a usage error.
    let (_, stderr, code) = run_with_stdin(&["synth", "-", "--baseline"], D_ELEMENT);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("state coding"), "{stderr}");
}

#[test]
fn dot_outputs_graphviz() {
    let (stdout, _, code) = run_with_stdin(&["dot", "-"], D_ELEMENT);
    assert_eq!(code, 0);
    assert!(stdout.contains("digraph sg"), "{stdout}");
}

#[test]
fn sg_format_autodetected() {
    let sg_text = "
.model t
.inputs a
.outputs b
.state graph
s0 a+ s1
s1 b+ s2
s2 a- s3
s3 b- s0
.marking {s0}
.end
";
    let (stdout, _, code) = run_with_stdin(&["analyze", "-"], sg_text);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("states: 4"), "{stdout}");
    assert!(stdout.contains("MC requirement: satisfied"), "{stdout}");
}

#[test]
fn unknown_command_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["frobnicate", "-"], "");
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn missing_spec_argument_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["analyze"], "");
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn verilog_emission() {
    let (stdout, _, code) = run_with_stdin(&["synth", "-", "--verilog"], D_ELEMENT);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("module simc_celement"), "{stdout}");
    assert!(stdout.contains("module simc_top ("), "{stdout}");
    assert!(stdout.contains("endmodule"), "{stdout}");
}

#[test]
fn stats_flag_reports_counters_and_spans() {
    let (stdout, stderr, code) = run_with_stdin(&["verify", "-", "--stats"], D_ELEMENT);
    assert_eq!(code, 0, "{stdout} {stderr}");
    assert!(stdout.contains("hazard-free"), "{stdout}");
    assert!(stderr.contains("counters:"), "{stderr}");
    assert!(stderr.contains("spans"), "{stderr}");
    assert!(stderr.contains("sat.solves"), "{stderr}");
    assert!(stderr.contains("verify.states_explored"), "{stderr}");
}

#[test]
fn stats_json_writes_parseable_report() {
    let path = std::env::temp_dir().join(format!("simc_stats_{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    let (stdout, stderr, code) =
        run_with_stdin(&["verify", "-", "--stats-json", path_str], D_ELEMENT);
    assert_eq!(code, 0, "{stdout} {stderr}");
    let text = std::fs::read_to_string(&path).expect("stats JSON written");
    std::fs::remove_file(&path).ok();
    let doc = simc::obs::json::parse(&text).expect("stats JSON parses");
    let solves = doc
        .get("counters")
        .and_then(|c| c.get("sat.solves"))
        .and_then(simc::obs::json::Value::as_u64);
    assert!(solves.is_some_and(|n| n > 0), "sat.solves missing or zero in {text}");
    assert!(doc.get("spans").is_some(), "spans section missing in {text}");
}

#[test]
fn stats_json_without_path_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["verify", "-", "--stats-json"], D_ELEMENT);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--stats-json needs a file path"), "{stderr}");
}

#[test]
fn unknown_flag_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["verify", "-", "--bogus"], D_ELEMENT);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("unknown flag"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn malformed_g_input_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["analyze", "-"], ".graph\nnonsense here\n");
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn malformed_sg_input_exits_2_with_line_number() {
    let garbage = ".model x\n.state graph\nthis is not an edge line\n.end\n";
    let (_, stderr, code) = run_with_stdin(&["analyze", "-"], garbage);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("line 3"), "{stderr}");
}

#[test]
fn malformed_g_marking_exits_2_with_line_number() {
    let garbage = ".model x\n.inputs a\n.outputs b\n.graph\na+ b+\n.marking { <q+,a+> }\n.end\n";
    let (_, stderr, code) = run_with_stdin(&["analyze", "-"], garbage);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("line 6"), "{stderr}");
}

#[test]
fn unreadable_file_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["analyze", "/nonexistent/simc_spec.g"], "");
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("reading"), "{stderr}");
}

#[test]
fn builtin_benchmark_resolves_without_file() {
    let (stdout, _, code) = run_with_stdin(&["analyze", "benchmarks/Delement"], "");
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("states:"), "{stdout}");
}

#[test]
fn complex_gate_flow() {
    // Figure-1-style CSC-satisfying spec through the complex-gate path.
    let toggle = "
.model toggle
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
    let (stdout, _, code) = run_with_stdin(&["verify", "-", "--complex"], toggle);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("hazard-free"), "{stdout}");
}

#[test]
fn fuzz_smoke_run_is_clean() {
    let (stdout, stderr, code) =
        run_with_stdin(&["fuzz", "--seed", "0xDAC94", "--iters", "10"], "");
    assert_eq!(code, 0, "{stdout} {stderr}");
    assert!(stdout.contains("10 case(s): 0 failure(s)"), "{stdout}");
}

#[test]
fn fuzz_accepts_decimal_and_reports_stats() {
    let (stdout, stderr, code) =
        run_with_stdin(&["fuzz", "--seed", "7", "--iters", "5", "--stats"], "");
    assert_eq!(code, 0, "{stdout} {stderr}");
    assert!(stderr.contains("fuzz.cases"), "{stderr}");
    assert!(stderr.contains("fuzz.faults_injected"), "{stderr}");
}

#[test]
fn fuzz_bad_seed_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["fuzz", "--seed", "not-a-number"], "");
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--seed"), "{stderr}");
}

#[test]
fn fuzz_zero_threads_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["fuzz", "--threads", "0"], "");
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--threads"), "{stderr}");
}

#[test]
fn fuzz_flags_rejected_elsewhere() {
    let (_, stderr, code) = run_with_stdin(&["verify", "-", "--seed", "3"], D_ELEMENT);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("only valid with `simc fuzz`"), "{stderr}");
}
