//! Integration tests for the `simc` command-line binary.
//!
//! Exit-code contract: 0 = success, 1 = operational failure (hazards,
//! CSC violation, oracle disagreement), 2 = usage error or malformed
//! input.

use std::io::Write as _;
use std::process::{Command, Stdio};

const D_ELEMENT: &str = "
.model delement
.inputs r a2
.outputs a r2
.graph
r+ r2+
r2+ a2+
a2+ r2-
r2- a2-
a2- a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
";

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_simc"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    // The binary may exit (e.g. on a bad flag) before reading stdin;
    // a broken pipe here is not a test failure.
    let _ = child.stdin.as_mut().expect("stdin piped").write_all(stdin.as_bytes());
    let output = child.wait_with_output().expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.code().expect("binary not killed by signal"),
    )
}

#[test]
fn analyze_reports_properties() {
    let (stdout, _, code) = run_with_stdin(&["analyze", "-"], D_ELEMENT);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("states: 8"), "{stdout}");
    assert!(stdout.contains("CSC: false"), "{stdout}");
    assert!(stdout.contains("MC requirement: VIOLATED"), "{stdout}");
}

#[test]
fn reduce_inserts_one_signal() {
    let (stdout, _, code) = run_with_stdin(&["reduce", "-"], D_ELEMENT);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("inserted 1 signal"), "{stdout}");
}

#[test]
fn verify_passes_after_reduction() {
    let (stdout, stderr, code) = run_with_stdin(&["verify", "-"], D_ELEMENT);
    assert_eq!(code, 0, "{stdout} {stderr}");
    assert!(stdout.contains("hazard-free"), "{stdout}");
    assert!(stderr.contains("inserted 1 state signal"), "{stderr}");
}

#[test]
fn synth_prints_equations() {
    let (stdout, _, code) = run_with_stdin(&["synth", "-"], D_ELEMENT);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("Sa"), "{stdout}");
    assert!(stdout.contains("= S"), "{stdout}");
}

#[test]
fn baseline_fails_on_csc_conflict() {
    // A well-formed spec the baseline cannot implement: an *operational*
    // failure, exit 1 — not a usage error.
    let (_, stderr, code) = run_with_stdin(&["synth", "-", "--baseline"], D_ELEMENT);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("state coding"), "{stderr}");
}

#[test]
fn dot_outputs_graphviz() {
    let (stdout, _, code) = run_with_stdin(&["dot", "-"], D_ELEMENT);
    assert_eq!(code, 0);
    assert!(stdout.contains("digraph sg"), "{stdout}");
}

#[test]
fn sg_format_autodetected() {
    let sg_text = "
.model t
.inputs a
.outputs b
.state graph
s0 a+ s1
s1 b+ s2
s2 a- s3
s3 b- s0
.marking {s0}
.end
";
    let (stdout, _, code) = run_with_stdin(&["analyze", "-"], sg_text);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("states: 4"), "{stdout}");
    assert!(stdout.contains("MC requirement: satisfied"), "{stdout}");
}

#[test]
fn unknown_command_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["frobnicate", "-"], "");
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn missing_spec_argument_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["analyze"], "");
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn verilog_emission() {
    let (stdout, _, code) = run_with_stdin(&["synth", "-", "--verilog"], D_ELEMENT);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("module simc_celement"), "{stdout}");
    assert!(stdout.contains("module simc_top ("), "{stdout}");
    assert!(stdout.contains("endmodule"), "{stdout}");
}

#[test]
fn stats_flag_reports_counters_and_spans() {
    let (stdout, stderr, code) = run_with_stdin(&["verify", "-", "--stats"], D_ELEMENT);
    assert_eq!(code, 0, "{stdout} {stderr}");
    assert!(stdout.contains("hazard-free"), "{stdout}");
    assert!(stderr.contains("counters:"), "{stderr}");
    assert!(stderr.contains("spans"), "{stderr}");
    assert!(stderr.contains("sat.solves"), "{stderr}");
    assert!(stderr.contains("verify.states_explored"), "{stderr}");
}

#[test]
fn stats_json_writes_parseable_report() {
    let path = std::env::temp_dir().join(format!("simc_stats_{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    let (stdout, stderr, code) =
        run_with_stdin(&["verify", "-", "--stats-json", path_str], D_ELEMENT);
    assert_eq!(code, 0, "{stdout} {stderr}");
    let text = std::fs::read_to_string(&path).expect("stats JSON written");
    std::fs::remove_file(&path).ok();
    let doc = simc::obs::json::parse(&text).expect("stats JSON parses");
    let solves = doc
        .get("counters")
        .and_then(|c| c.get("sat.solves"))
        .and_then(simc::obs::json::Value::as_u64);
    assert!(solves.is_some_and(|n| n > 0), "sat.solves missing or zero in {text}");
    assert!(doc.get("spans").is_some(), "spans section missing in {text}");
}

#[test]
fn stats_json_without_path_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["verify", "-", "--stats-json"], D_ELEMENT);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--stats-json needs a file path"), "{stderr}");
}

#[test]
fn unknown_flag_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["verify", "-", "--bogus"], D_ELEMENT);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("unknown flag"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn malformed_g_input_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["analyze", "-"], ".graph\nnonsense here\n");
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn malformed_sg_input_exits_2_with_line_number() {
    let garbage = ".model x\n.state graph\nthis is not an edge line\n.end\n";
    let (_, stderr, code) = run_with_stdin(&["analyze", "-"], garbage);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("line 3"), "{stderr}");
}

#[test]
fn malformed_g_marking_exits_2_with_line_number() {
    let garbage = ".model x\n.inputs a\n.outputs b\n.graph\na+ b+\n.marking { <q+,a+> }\n.end\n";
    let (_, stderr, code) = run_with_stdin(&["analyze", "-"], garbage);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("line 6"), "{stderr}");
}

#[test]
fn unreadable_file_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["analyze", "/nonexistent/simc_spec.g"], "");
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("reading"), "{stderr}");
}

#[test]
fn builtin_benchmark_resolves_without_file() {
    let (stdout, _, code) = run_with_stdin(&["analyze", "benchmarks/Delement"], "");
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("states:"), "{stdout}");
}

#[test]
fn complex_gate_flow() {
    // Figure-1-style CSC-satisfying spec through the complex-gate path.
    let toggle = "
.model toggle
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
    let (stdout, _, code) = run_with_stdin(&["verify", "-", "--complex"], toggle);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("hazard-free"), "{stdout}");
}

#[test]
fn fuzz_smoke_run_is_clean() {
    let (stdout, stderr, code) =
        run_with_stdin(&["fuzz", "--seed", "0xDAC94", "--iters", "10"], "");
    assert_eq!(code, 0, "{stdout} {stderr}");
    assert!(stdout.contains("10 case(s): 0 failure(s)"), "{stdout}");
}

#[test]
fn fuzz_accepts_decimal_and_reports_stats() {
    let (stdout, stderr, code) =
        run_with_stdin(&["fuzz", "--seed", "7", "--iters", "5", "--stats"], "");
    assert_eq!(code, 0, "{stdout} {stderr}");
    assert!(stderr.contains("fuzz.cases"), "{stderr}");
    assert!(stderr.contains("fuzz.faults_injected"), "{stderr}");
}

#[test]
fn fuzz_bad_seed_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["fuzz", "--seed", "not-a-number"], "");
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--seed"), "{stderr}");
}

#[test]
fn fuzz_zero_threads_exits_2() {
    let (_, stderr, code) = run_with_stdin(&["fuzz", "--threads", "0"], "");
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--threads"), "{stderr}");
}

#[test]
fn fuzz_flags_rejected_elsewhere() {
    let (_, stderr, code) = run_with_stdin(&["verify", "-", "--seed", "3"], D_ELEMENT);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("only valid with `simc fuzz`"), "{stderr}");
}

#[test]
fn fuzz_zero_iters_exits_2_in_legacy_mode() {
    // Zero iterations runs no oracle: "success" would be vacuous.
    let (_, stderr, code) = run_with_stdin(&["fuzz", "--iters", "0"], "");
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--iters"), "{stderr}");
}

#[test]
fn fuzz_zero_iters_exits_2_in_campaign_mode() {
    let (_, stderr, code) = run_with_stdin(&["fuzz", "--campaign", "--iters", "0"], "");
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--iters"), "{stderr}");
}

#[test]
fn fuzz_campaign_emits_deterministic_json() {
    let args = ["fuzz", "--campaign", "--seed", "0xDAC94", "--iters", "16"];
    let (stdout, stderr, code) = run_with_stdin(&args, "");
    assert_eq!(code, 0, "{stdout} {stderr}");
    assert!(stdout.contains("\"fuzz_campaign\""), "{stdout}");
    assert!(stdout.contains("\"ok\": true"), "{stdout}");
    assert!(stdout.contains("\"curve\""), "{stdout}");
    assert!(!stdout.contains("shard"), "summary leaks shard count: {stdout}");
    // Byte-identical on a re-run and on a different shard width.
    let (again, _, _) = run_with_stdin(&args, "");
    assert_eq!(stdout, again, "campaign summary not deterministic");
    let (sharded, _, code) = run_with_stdin(
        &["fuzz", "--campaign", "--seed", "0xDAC94", "--iters", "16", "--shards", "8"],
        "",
    );
    assert_eq!(code, 0);
    assert_eq!(stdout, sharded, "shard count leaked into the summary");
}

#[test]
fn fuzz_campaign_corpus_persists_and_out_writes_file() {
    let tmp = TempDir::new("fuzz_campaign");
    let corpus = tmp.file("corpus");
    let out = tmp.file("summary.json");
    let args = [
        "fuzz", "--campaign", "--seed", "9", "--iters", "16", "--corpus", &corpus, "--out", &out,
    ];
    let (stdout, stderr, code) = run_with_stdin(&args, "");
    assert_eq!(code, 0, "{stdout} {stderr}");
    assert!(stdout.is_empty(), "--out must keep stdout clean: {stdout}");
    let summary = std::fs::read_to_string(&out).expect("summary written");
    assert!(summary.contains("\"corpus\": {\"initial\": 0"), "{summary}");
    // The corpus directory now holds entries; a warm rerun loads them.
    let (_, _, code) = run_with_stdin(&args, "");
    assert_eq!(code, 0);
    let warm = std::fs::read_to_string(&out).expect("summary rewritten");
    assert!(!warm.contains("\"initial\": 0"), "corpus did not persist: {warm}");
}

#[test]
fn fuzz_campaign_flags_require_campaign_mode() {
    for args in [
        ["fuzz", "--shards", "2"].as_slice(),
        ["fuzz", "--corpus", "/tmp/nowhere"].as_slice(),
        ["fuzz", "--out", "/tmp/nowhere.json"].as_slice(),
    ] {
        let (_, stderr, code) = run_with_stdin(args, "");
        assert_eq!(code, 2, "{args:?}: {stderr}");
        assert!(stderr.contains("--campaign"), "{args:?}: {stderr}");
    }
}

#[test]
fn campaign_flag_rejected_elsewhere() {
    let (_, stderr, code) = run_with_stdin(&["verify", "-", "--campaign"], D_ELEMENT);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("only valid with `simc fuzz`"), "{stderr}");
}

/// A scratch directory removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("simc_cli_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn file(&self, name: &str) -> String {
        self.0.join(name).to_str().expect("utf-8 temp path").to_string()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn batch_warm_cache_run_is_byte_identical_and_hits() {
    let tmp = TempDir::new("batch");
    let manifest = tmp.file("manifest.txt");
    std::fs::write(&manifest, "# smoke manifest\nbenchmarks/Delement\nbenchmarks/Delement --rs\n")
        .expect("write manifest");
    let cache_dir = tmp.file("cache");
    let stats_cold = tmp.file("cold.json");
    let stats_warm = tmp.file("warm.json");
    let run = |stats: &str| {
        run_with_stdin(
            &["batch", &manifest, "--cache-dir", &cache_dir, "--threads", "2", "--stats-json", stats],
            "",
        )
    };
    let (cold_out, cold_err, cold_code) = run(&stats_cold);
    assert_eq!(cold_code, 0, "{cold_out} {cold_err}");
    let (warm_out, warm_err, warm_code) = run(&stats_warm);
    assert_eq!(warm_code, 0, "{warm_out} {warm_err}");
    assert_eq!(cold_out, warm_out, "warm batch output differs from cold");
    assert!(cold_out.contains("\"status\": \"ok\""), "{cold_out}");
    assert!(cold_out.contains("\"jobs_failed\": 0"), "{cold_out}");
    let warm_stats = std::fs::read_to_string(&stats_warm).expect("warm stats written");
    let doc = simc::obs::json::parse(&warm_stats).expect("stats JSON parses");
    let hits = doc
        .get("counters")
        .and_then(|c| c.get("cache.hits"))
        .and_then(simc::obs::json::Value::as_u64);
    assert!(hits.is_some_and(|n| n > 0), "cache.hits missing or zero in {warm_stats}");
    let misses = doc
        .get("counters")
        .and_then(|c| c.get("cache.misses"))
        .and_then(simc::obs::json::Value::as_u64);
    assert_eq!(misses, Some(0), "warm run should not miss: {warm_stats}");
}

#[test]
fn batch_summary_written_to_out_file() {
    let tmp = TempDir::new("batch_out");
    let manifest = tmp.file("manifest.txt");
    std::fs::write(&manifest, "benchmarks/Delement\n").expect("write manifest");
    let out = tmp.file("summary.json");
    let (stdout, stderr, code) =
        run_with_stdin(&["batch", &manifest, "--threads", "1", "--out", &out], "");
    assert_eq!(code, 0, "{stdout} {stderr}");
    let summary = std::fs::read_to_string(&out).expect("summary written");
    let doc = simc::obs::json::parse(&summary).expect("summary JSON parses");
    assert_eq!(
        doc.get("jobs_total").and_then(simc::obs::json::Value::as_u64),
        Some(1),
        "{summary}"
    );
}

#[test]
fn batch_manifest_with_unknown_option_exits_2() {
    let tmp = TempDir::new("batch_bad");
    let manifest = tmp.file("manifest.txt");
    std::fs::write(&manifest, "benchmarks/Delement --frobnicate\n").expect("write manifest");
    let (_, stderr, code) = run_with_stdin(&["batch", &manifest], "");
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("unknown option"), "{stderr}");
    assert!(stderr.contains("line 1"), "{stderr}");
}

#[test]
fn batch_with_failing_job_exits_1() {
    let tmp = TempDir::new("batch_fail");
    let manifest = tmp.file("manifest.txt");
    std::fs::write(&manifest, "benchmarks/Delement\n/nonexistent/simc_spec.g\n")
        .expect("write manifest");
    let (stdout, stderr, code) = run_with_stdin(&["batch", &manifest], "");
    assert_eq!(code, 1, "{stdout} {stderr}");
    assert!(stdout.contains("\"status\": \"error\""), "{stdout}");
    assert!(stderr.contains("1 of 2 batch job(s) failed"), "{stderr}");
}

#[test]
fn out_flag_rejected_outside_batch() {
    let (_, stderr, code) = run_with_stdin(&["verify", "-", "--out", "x.json"], D_ELEMENT);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("only valid with `simc batch`"), "{stderr}");
}

#[test]
fn cache_dir_verify_is_byte_identical_across_runs() {
    let tmp = TempDir::new("cache_dir");
    let cache_dir = tmp.file("cache");
    let run = || run_with_stdin(&["verify", "-", "--cache-dir", &cache_dir], D_ELEMENT);
    let (cold_out, cold_err, cold_code) = run();
    assert_eq!(cold_code, 0, "{cold_out} {cold_err}");
    let (warm_out, warm_err, warm_code) = run();
    assert_eq!(warm_code, 0, "{warm_out} {warm_err}");
    assert_eq!(cold_out, warm_out, "warm verify stdout differs from cold");
    assert!(cold_out.contains("hazard-free"), "{cold_out}");
    assert!(warm_err.contains("inserted 1 state signal"), "{warm_err}");
}

#[test]
fn serve_round_trips_over_http_and_drains_cleanly() {
    use std::io::{BufRead as _, BufReader, Read as _};
    use std::net::TcpStream;

    let tmp = TempDir::new("serve_cli");
    let cache_dir = tmp.file("cache");
    let mut child = Command::new(env!("CARGO_BIN_EXE_simc"))
        .args(["serve", "--port", "0", "--threads", "2", "--cache-dir", &cache_dir])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    // The daemon announces its (ephemeral) address as the first stdout
    // line; everything after that speaks HTTP over a raw socket.
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected announcement `{line}`"))
        .to_string();

    let send = |method: &str, path: &str, body: &str| -> (u16, String) {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(raw.as_bytes()).expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let status = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad response `{response}`"));
        let body = response.split_once("\r\n\r\n").expect("head/body split").1.to_string();
        (status, body)
    };

    let spec = simc::sg::write_sg(&simc::benchmarks::figures::toggle(), "toggle");
    let (status, body) = send("POST", "/v1/verify", &spec);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("hazard-free"), "{body}");
    // Malformed input maps to 400 — the HTTP face of CLI exit 2.
    let (status, body) = send("POST", "/v1/verify", "not a spec");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\":\"parse\""), "{body}");
    // The format registry is one document: the daemon serves the same
    // bytes the CLI prints for `simc convert --list`.
    let (status, body) = send("GET", "/v1/formats", "");
    assert_eq!(status, 200, "{body}");
    let (list, _, code) = run_with_stdin(&["convert", "--list"], "");
    assert_eq!(code, 0, "{list}");
    assert_eq!(body, list, "GET /v1/formats differs from `simc convert --list`");
    // `/v1/convert` routes through the same registry, keyed by header.
    let send_convert = |format: Option<&str>, body: &str| -> (u16, String) {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let header = format.map_or(String::new(), |f| format!("X-Simc-Format: {f}\r\n"));
        let raw = format!(
            "POST /v1/convert HTTP/1.1\r\nHost: t\r\n{header}Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(raw.as_bytes()).expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let status = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad response `{response}`"));
        let body = response.split_once("\r\n\r\n").expect("head/body split").1.to_string();
        (status, body)
    };
    let (status, body) = send_convert(Some("edif"), &spec);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"format\":\"edif\""), "{body}");
    assert!(body.contains("edifVersion"), "{body}");
    let (status, body) = send_convert(None, &spec);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("X-Simc-Format"), "{body}");
    let (status, body) = send_convert(Some("xml"), &spec);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown format"), "{body}");
    let (status, body) = send("POST", "/shutdown", "");
    assert_eq!(status, 200, "{body}");

    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exit: {status:?}");
}

#[test]
fn convert_emits_formats_and_round_trips() {
    let tmp = TempDir::new("convert");
    let (list, _, code) = run_with_stdin(&["convert", "--list"], "");
    assert_eq!(code, 0, "{list}");
    for id in ["\"sg\"", "\"edif\"", "\"spice\"", "\"dot\""] {
        assert!(list.contains(id), "registry listing lacks {id}: {list}");
    }
    let (edif, err, code) = run_with_stdin(&["convert", "benchmarks/Delement", "--to", "edif"], "");
    assert_eq!(code, 0, "{err}");
    assert!(edif.contains("edifVersion"), "{edif}");
    // Re-converting the emitted deck must be byte-identical: after one
    // parse the port order is the net order, so emit ∘ parse is the
    // identity on emitted files.
    let deck = tmp.file("d.edif");
    std::fs::write(&deck, &edif).expect("write deck");
    let (again, err, code) = run_with_stdin(&["convert", &deck, "--to", "edif"], "");
    assert_eq!(code, 0, "{err}");
    assert_eq!(again, edif, "EDIF re-emission is not idempotent");
    // The other writers accept both spec and EDIF inputs.
    let (spice, err, code) = run_with_stdin(&["convert", &deck, "--to", "spice"], "");
    assert_eq!(code, 0, "{err}");
    assert!(spice.contains(".subckt"), "{spice}");
    let (dot, err, code) = run_with_stdin(&["convert", "benchmarks/Delement", "--to", "dot"], "");
    assert_eq!(code, 0, "{err}");
    assert!(dot.contains("digraph netlist"), "{dot}");
}

#[test]
fn convert_rejects_bad_requests() {
    let (_, err, code) = run_with_stdin(&["convert", "benchmarks/Delement", "--to", "xml"], "");
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("unknown format"), "{err}");
    let (_, err, code) = run_with_stdin(&["convert", "benchmarks/Delement"], "");
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("--to"), "{err}");
    // Malformed EDIF fails with a typed, line-carrying error — exit 2,
    // the same contract as a malformed `.g`/`.sg` spec.
    let broken = "(edif simc\n  (edifVersion 2 0 0";
    let (_, err, code) = run_with_stdin(&["convert", "-", "--to", "edif"], broken);
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("line"), "{err}");
}

#[test]
fn convert_warm_cache_skips_reemission() {
    let tmp = TempDir::new("convert_cache");
    let cache_dir = tmp.file("cache");
    let cold_stats = tmp.file("cold.json");
    let warm_stats = tmp.file("warm.json");
    let run = |stats: &str| {
        run_with_stdin(
            &[
                "convert",
                "benchmarks/Delement",
                "--to",
                "edif",
                "--cache-dir",
                &cache_dir,
                "--stats-json",
                stats,
            ],
            "",
        )
    };
    let (cold, cold_err, code) = run(&cold_stats);
    assert_eq!(code, 0, "{cold_err}");
    let (warm, warm_err, code) = run(&warm_stats);
    assert_eq!(code, 0, "{warm_err}");
    assert_eq!(cold, warm, "cached conversion differs from cold");
    let counter = |path: &str, name: &str| {
        let text = std::fs::read_to_string(path).expect("stats written");
        let doc = simc::obs::json::parse(&text).expect("stats JSON parses");
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(simc::obs::json::Value::as_u64)
    };
    // Cold run does the emission; the warm run is answered entirely by
    // the shared cache — no emit, no cache miss.
    assert_eq!(counter(&cold_stats, "convert.emits"), Some(1), "cold run should emit once");
    assert_eq!(counter(&warm_stats, "convert.emits"), Some(0), "warm run re-emitted");
    assert_eq!(counter(&warm_stats, "cache.misses"), Some(0), "warm run missed the cache");
    let hits = counter(&warm_stats, "cache.hits");
    assert!(hits.is_some_and(|n| n > 0), "warm run shows no cache hits");
}
