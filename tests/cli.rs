//! Integration tests for the `simc` command-line binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

const D_ELEMENT: &str = "
.model delement
.inputs r a2
.outputs a r2
.graph
r+ r2+
r2+ a2+
a2+ r2-
r2- a2-
a2- a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
";

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_simc"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    // The binary may exit (e.g. on a bad flag) before reading stdin;
    // a broken pipe here is not a test failure.
    let _ = child.stdin.as_mut().expect("stdin piped").write_all(stdin.as_bytes());
    let output = child.wait_with_output().expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

#[test]
fn analyze_reports_properties() {
    let (stdout, _, ok) = run_with_stdin(&["analyze", "-"], D_ELEMENT);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("states: 8"), "{stdout}");
    assert!(stdout.contains("CSC: false"), "{stdout}");
    assert!(stdout.contains("MC requirement: VIOLATED"), "{stdout}");
}

#[test]
fn reduce_inserts_one_signal() {
    let (stdout, _, ok) = run_with_stdin(&["reduce", "-"], D_ELEMENT);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("inserted 1 signal"), "{stdout}");
}

#[test]
fn verify_passes_after_reduction() {
    let (stdout, stderr, ok) = run_with_stdin(&["verify", "-"], D_ELEMENT);
    assert!(ok, "{stdout} {stderr}");
    assert!(stdout.contains("hazard-free"), "{stdout}");
    assert!(stderr.contains("inserted 1 state signal"), "{stderr}");
}

#[test]
fn synth_prints_equations() {
    let (stdout, _, ok) = run_with_stdin(&["synth", "-"], D_ELEMENT);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Sa"), "{stdout}");
    assert!(stdout.contains("= S"), "{stdout}");
}

#[test]
fn baseline_fails_on_csc_conflict() {
    let (_, stderr, ok) = run_with_stdin(&["synth", "-", "--baseline"], D_ELEMENT);
    assert!(!ok);
    assert!(stderr.contains("state coding"), "{stderr}");
}

#[test]
fn dot_outputs_graphviz() {
    let (stdout, _, ok) = run_with_stdin(&["dot", "-"], D_ELEMENT);
    assert!(ok);
    assert!(stdout.contains("digraph sg"), "{stdout}");
}

#[test]
fn sg_format_autodetected() {
    let sg_text = "
.model t
.inputs a
.outputs b
.state graph
s0 a+ s1
s1 b+ s2
s2 a- s3
s3 b- s0
.marking {s0}
.end
";
    let (stdout, _, ok) = run_with_stdin(&["analyze", "-"], sg_text);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("states: 4"), "{stdout}");
    assert!(stdout.contains("MC requirement: satisfied"), "{stdout}");
}

#[test]
fn unknown_command_errors() {
    let (_, stderr, ok) = run_with_stdin(&["frobnicate", "-"], "");
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn verilog_emission() {
    let (stdout, _, ok) = run_with_stdin(&["synth", "-", "--verilog"], D_ELEMENT);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("module simc_celement"), "{stdout}");
    assert!(stdout.contains("module simc_top ("), "{stdout}");
    assert!(stdout.contains("endmodule"), "{stdout}");
}

#[test]
fn stats_flag_reports_counters_and_spans() {
    let (stdout, stderr, ok) = run_with_stdin(&["verify", "-", "--stats"], D_ELEMENT);
    assert!(ok, "{stdout} {stderr}");
    assert!(stdout.contains("hazard-free"), "{stdout}");
    assert!(stderr.contains("counters:"), "{stderr}");
    assert!(stderr.contains("spans"), "{stderr}");
    assert!(stderr.contains("sat.solves"), "{stderr}");
    assert!(stderr.contains("verify.states_explored"), "{stderr}");
}

#[test]
fn stats_json_writes_parseable_report() {
    let path = std::env::temp_dir().join(format!("simc_stats_{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    let (stdout, stderr, ok) =
        run_with_stdin(&["verify", "-", "--stats-json", path_str], D_ELEMENT);
    assert!(ok, "{stdout} {stderr}");
    let text = std::fs::read_to_string(&path).expect("stats JSON written");
    std::fs::remove_file(&path).ok();
    let doc = simc::obs::json::parse(&text).expect("stats JSON parses");
    let solves = doc
        .get("counters")
        .and_then(|c| c.get("sat.solves"))
        .and_then(simc::obs::json::Value::as_u64);
    assert!(solves.is_some_and(|n| n > 0), "sat.solves missing or zero in {text}");
    assert!(doc.get("spans").is_some(), "spans section missing in {text}");
}

#[test]
fn stats_json_without_path_errors() {
    let (_, stderr, ok) = run_with_stdin(&["verify", "-", "--stats-json"], D_ELEMENT);
    assert!(!ok);
    assert!(stderr.contains("--stats-json needs a file path"), "{stderr}");
}

#[test]
fn unknown_flag_errors() {
    let (_, stderr, ok) = run_with_stdin(&["verify", "-", "--bogus"], D_ELEMENT);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn malformed_g_input_errors() {
    let (_, stderr, ok) = run_with_stdin(&["analyze", "-"], ".graph\nnonsense here\n");
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn malformed_sg_input_errors() {
    let garbage = ".model x\n.state graph\nthis is not an edge line\n.end\n";
    let (_, stderr, ok) = run_with_stdin(&["analyze", "-"], garbage);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn builtin_benchmark_resolves_without_file() {
    let (stdout, _, ok) = run_with_stdin(&["analyze", "benchmarks/Delement"], "");
    assert!(ok, "{stdout}");
    assert!(stdout.contains("states:"), "{stdout}");
}

#[test]
fn complex_gate_flow() {
    // Figure-1-style CSC-satisfying spec through the complex-gate path.
    let toggle = "
.model toggle
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
    let (stdout, _, ok) = run_with_stdin(&["verify", "-", "--complex"], toggle);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("hazard-free"), "{stdout}");
}
