//! Integration tests for the `simc` command-line binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

const D_ELEMENT: &str = "
.model delement
.inputs r a2
.outputs a r2
.graph
r+ r2+
r2+ a2+
a2+ r2-
r2- a2-
a2- a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
";

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_simc"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("stdin written");
    let output = child.wait_with_output().expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

#[test]
fn analyze_reports_properties() {
    let (stdout, _, ok) = run_with_stdin(&["analyze", "-"], D_ELEMENT);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("states: 8"), "{stdout}");
    assert!(stdout.contains("CSC: false"), "{stdout}");
    assert!(stdout.contains("MC requirement: VIOLATED"), "{stdout}");
}

#[test]
fn reduce_inserts_one_signal() {
    let (stdout, _, ok) = run_with_stdin(&["reduce", "-"], D_ELEMENT);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("inserted 1 signal"), "{stdout}");
}

#[test]
fn verify_passes_after_reduction() {
    let (stdout, stderr, ok) = run_with_stdin(&["verify", "-"], D_ELEMENT);
    assert!(ok, "{stdout} {stderr}");
    assert!(stdout.contains("hazard-free"), "{stdout}");
    assert!(stderr.contains("inserted 1 state signal"), "{stderr}");
}

#[test]
fn synth_prints_equations() {
    let (stdout, _, ok) = run_with_stdin(&["synth", "-"], D_ELEMENT);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Sa"), "{stdout}");
    assert!(stdout.contains("= S"), "{stdout}");
}

#[test]
fn baseline_fails_on_csc_conflict() {
    let (_, stderr, ok) = run_with_stdin(&["synth", "-", "--baseline"], D_ELEMENT);
    assert!(!ok);
    assert!(stderr.contains("state coding"), "{stderr}");
}

#[test]
fn dot_outputs_graphviz() {
    let (stdout, _, ok) = run_with_stdin(&["dot", "-"], D_ELEMENT);
    assert!(ok);
    assert!(stdout.contains("digraph sg"), "{stdout}");
}

#[test]
fn sg_format_autodetected() {
    let sg_text = "
.model t
.inputs a
.outputs b
.state graph
s0 a+ s1
s1 b+ s2
s2 a- s3
s3 b- s0
.marking {s0}
.end
";
    let (stdout, _, ok) = run_with_stdin(&["analyze", "-"], sg_text);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("states: 4"), "{stdout}");
    assert!(stdout.contains("MC requirement: satisfied"), "{stdout}");
}

#[test]
fn unknown_command_errors() {
    let (_, stderr, ok) = run_with_stdin(&["frobnicate", "-"], "");
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn verilog_emission() {
    let (stdout, _, ok) = run_with_stdin(&["synth", "-", "--verilog"], D_ELEMENT);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("module simc_celement"), "{stdout}");
    assert!(stdout.contains("module simc_top ("), "{stdout}");
    assert!(stdout.contains("endmodule"), "{stdout}");
}

#[test]
fn complex_gate_flow() {
    // Figure-1-style CSC-satisfying spec through the complex-gate path.
    let toggle = "
.model toggle
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
    let (stdout, _, ok) = run_with_stdin(&["verify", "-", "--complex"], toggle);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("hazard-free"), "{stdout}");
}
