//! Interchange-format acceptance: the EDIF writer and reader are
//! inverses on every netlist the synthesizer produces (judged on the
//! canonical netlist form), malformed EDIF fails with typed line-carrying
//! errors, and conversions land in the shared artifact cache.

use simc::formats::{canonical_netlist, read_edif, write_edif, EdifError};
use simc::prelude::*;

/// One round trip: emit, parse back, compare canonical forms, and check
/// re-emission is byte-stable (after one parse the port order *is* the
/// net order, so emit ∘ parse must be the identity on emitted files).
fn assert_round_trips(netlist: &Netlist, label: &str) {
    let edif = write_edif(netlist).unwrap_or_else(|e| panic!("{label}: emit failed: {e}"));
    let back = read_edif(&edif).unwrap_or_else(|e| panic!("{label}: reparse failed: {e}"));
    assert_eq!(
        canonical_netlist(&back),
        canonical_netlist(netlist),
        "{label}: canonical netlist changed across the EDIF round trip"
    );
    let again = write_edif(&back).unwrap_or_else(|e| panic!("{label}: re-emit failed: {e}"));
    assert_eq!(again, edif, "{label}: EDIF emission is not idempotent");
}

#[test]
fn edif_round_trips_every_suite_benchmark() {
    for benchmark in simc::benchmarks::suite::all() {
        let sg = benchmark.stg.to_state_graph().expect("suite benchmark reaches");
        let mut pipeline = Pipeline::from_sg(sg);
        let implemented = pipeline
            .implemented()
            .unwrap_or_else(|e| panic!("{}: synthesis failed: {e}", benchmark.name));
        assert_round_trips(implemented.netlist(), benchmark.name);
    }
}

#[test]
fn edif_round_trips_rs_latch_and_complex_styles() {
    // RS2 cells (set/reset polarities in INVMASK) and CPLX cells (SOP +
    // FEEDBACK properties) exercise the property-carrying encodings the
    // C-element suite pass does not.
    let sg = simc::benchmarks::figures::figure4();
    let mut rs = Pipeline::from_sg(sg.clone()).with_target(Target::RsLatch);
    assert_round_trips(rs.implemented().expect("RS synthesis").netlist(), "figure4 --rs");

    let reduced = Pipeline::from_sg(sg).implemented().expect("reduction").working_sg().clone();
    let complex = simc::mc::complex::synthesize_complex(&reduced).expect("complex synthesis");
    assert_round_trips(&complex, "figure4 --complex");
}

#[test]
fn edif_round_trips_two_hundred_fuzzed_netlists() {
    use simc::fuzz::{random_recipe, GenConfig, Rng};
    // Fixed seed: the acceptance run is deterministic. Tight reduction
    // budgets keep adversarial cases bounded; budget refusals are skips,
    // not failures, and do not count towards the 200.
    let mut rng = Rng::new(0x51C0_DAC1_994E_D1F0);
    let reduce = ReduceOptions {
        max_signals: 4,
        max_candidates: 12,
        beam_width: 6,
        branch: 4,
        ..ReduceOptions::default()
    };
    let mut checked = 0u32;
    for case in 0..600 {
        if checked == 200 {
            break;
        }
        let cfg = GenConfig { csc_injection: case % 2 == 1, ..GenConfig::default() };
        let recipe = random_recipe(&mut rng, cfg);
        let Ok(sg) = simc::fuzz::gen::to_state_graph(&recipe) else { continue };
        let mut pipeline = Pipeline::from_sg(sg).with_reduce_options(reduce);
        match pipeline.implemented() {
            Ok(implemented) => {
                assert_round_trips(implemented.netlist(), &format!("fuzz case {case}"));
                checked += 1;
            }
            Err(e) if e.kind() == ErrorKind::ResourceLimit => continue,
            Err(e) => panic!("fuzz case {case}: synthesis failed: {e}"),
        }
    }
    assert_eq!(checked, 200, "generator did not yield 200 synthesizable cases");
}

/// A valid emitted deck to corrupt, plus its line count.
fn reference_edif() -> String {
    let sg = simc::benchmarks::figures::toggle();
    let mut pipeline = Pipeline::from_sg(sg);
    write_edif(pipeline.implemented().expect("toggle synthesizes").netlist())
        .expect("toggle emits")
}

#[test]
fn malformed_edif_fails_with_typed_line_errors() {
    // Syntax-level defects: the s-expression layer reports them with the
    // line the tokenizer was on.
    let syntax_cases: &[(&str, &str)] = &[
        ("(edif simc\n(edifVersion 2 0 0", "unbalanced"),
        ("(edif simc)\n(trailing)", "trailing"),
        ("(edif \"unterminated\n)", "unterminated string"),
        ("", "empty"),
    ];
    for (text, label) in syntax_cases {
        match read_edif(text) {
            Err(EdifError::Syntax { .. }) => {}
            other => panic!("{label}: expected a syntax error, got {other:?}"),
        }
    }

    // Model-level defects: well-formed s-expressions that do not describe
    // a netlist. Each error must carry the line of the offending node and
    // render it (`at line N`) for the CLI/HTTP diagnostics.
    let reference = reference_edif();
    let model_cases: &[(String, &str)] = &[
        (reference.replace("(cellRef top ", "(cellRef missing "), "dangling design cellRef"),
        (reference.replace("(cellRef C2 ", "(cellRef XYZZY "), "unknown cell reference"),
        (reference.replace("(portRef q ", "(portRef zz "), "unknown port reference"),
        (reference.replace("(design top ", "(designx top "), "missing design"),
    ];
    for (text, label) in model_cases {
        let error = match read_edif(text) {
            Err(e @ EdifError::Model { .. }) => e,
            other => panic!("{label}: expected a model error, got {other:?}"),
        };
        let rendered = error.to_string();
        assert!(
            rendered.contains(&format!("at line {}", error.line())),
            "{label}: error does not render its line: {rendered}"
        );
    }
}

#[test]
fn conversions_are_served_from_the_shared_cache() {
    use std::sync::Arc;
    let cache: Arc<dyn Cache> = Arc::new(MemCache::new(8 << 20));
    let sg = simc::benchmarks::figures::toggle();
    let convert = |cache: &Arc<dyn Cache>| {
        let mut pipeline =
            Pipeline::from_sg(sg.clone()).with_cache(Arc::clone(cache));
        pipeline.converted("edif").expect("conversion succeeds")
    };
    simc::obs::set_counters(true);
    let cold = convert(&cache);
    // The warm conversion must be answered entirely by the cache: same
    // bytes, and the emit counter does not move.
    let before = simc::obs::report().counter(simc::obs::Counter::ConvertEmits);
    let warm = convert(&cache);
    let after = simc::obs::report().counter(simc::obs::Counter::ConvertEmits);
    assert_eq!(cold, warm, "cached conversion differs from cold");
    assert_eq!(after, before, "warm conversion re-emitted instead of hitting the cache");
}
