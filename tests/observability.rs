//! End-to-end tests of the observability layer: enabling stats must not
//! change any pipeline result, and counter reports must be byte-identical
//! across worker-thread counts.
//!
//! The observability state is process-global, so every test here
//! serializes on one mutex; no other test binary runs concurrently with
//! this one (cargo executes test binaries one at a time).

use std::sync::{Mutex, MutexGuard};

use simc::benchmarks::suite;
use simc::mc::assign::{reduce_to_mc, ReduceOptions};
use simc::mc::synth::{synthesize, Target};
use simc::mc::{McCheck, ParallelSynth};
use simc::netlist::{random_walk, to_verilog, verify, VerifyOptions};
use simc::obs::{self, Counter};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The full pipeline on one suite benchmark; returns every observable
/// artifact (equations, Verilog, verdict, structure) for comparison.
fn pipeline(name: &str) -> (String, String, bool, usize, usize) {
    let b = suite::all().into_iter().find(|b| b.name == name).expect("suite member");
    let sg = b.stg.to_state_graph().expect("reaches");
    let reduced = reduce_to_mc(&sg, ReduceOptions::default()).expect("reduces");
    let implementation = synthesize(&reduced.sg, Target::CElement).expect("synthesizes");
    let netlist = implementation.to_netlist().expect("netlist builds");
    let verdict = verify(&netlist, &reduced.sg, VerifyOptions::default())
        .expect("verification runs")
        .is_ok();
    (
        implementation.equations(),
        to_verilog(&netlist, "simc_top"),
        verdict,
        reduced.sg.state_count(),
        reduced.added,
    )
}

#[test]
fn stats_do_not_change_results() {
    let _g = lock();
    // Fast suite members (the heavy insertions are exercised by the
    // repro binary; this test cares about equality, not coverage).
    let mut any_sat_solves = false;
    for name in ["duplicator", "mp-forward-pkt", "luciano", "Delement", "nowick"] {
        obs::set_stats(false);
        obs::reset();
        let off = pipeline(name);

        obs::set_stats(true);
        obs::reset();
        let on = pipeline(name);
        let report = obs::report();
        obs::set_stats(false);
        obs::reset();

        assert_eq!(off, on, "{name}: enabling stats changed a pipeline result");
        // The instrumented run actually counted the work it did. (A spec
        // whose covers fall out degenerately may never touch SAT, so the
        // SAT assertion is over the whole set.)
        any_sat_solves |= report.counter(Counter::SatSolves) > 0;
        assert!(
            report.counter(Counter::CoverCubesChecked) > 0,
            "{name}: no cover cubes recorded"
        );
        assert!(report.counter(Counter::VerifyStates) > 0, "{name}: no verify states");
    }
    assert!(any_sat_solves, "no benchmark recorded any SAT solves");
}

#[test]
fn counter_reports_deterministic_across_threads() {
    let _g = lock();
    for b in suite::all() {
        let sg = b.stg.to_state_graph().expect("reaches");
        let check = McCheck::new(&sg);
        let mut reference: Option<String> = None;
        for threads in [1usize, 2, 8] {
            obs::set_counters(true);
            obs::reset();
            let _ = ParallelSynth::new(threads).report(&check);
            let text = obs::report().counters_text();
            obs::set_counters(false);
            obs::reset();
            match &reference {
                None => reference = Some(text),
                Some(expected) => assert_eq!(
                    &text, expected,
                    "{}: counter report differs at {} threads",
                    b.name, threads
                ),
            }
        }
    }
}

#[test]
fn walk_report_agrees_with_counters_exactly() {
    let _g = lock();
    let b = suite::all().into_iter().find(|b| b.name == "Delement").unwrap();
    let sg = b.stg.to_state_graph().unwrap();
    let reduced = reduce_to_mc(&sg, ReduceOptions::default()).unwrap();
    let netlist = synthesize(&reduced.sg, Target::CElement)
        .unwrap()
        .to_netlist()
        .unwrap();

    obs::set_counters(true);
    obs::reset();
    let mut steps = 0u64;
    let mut violations = 0u64;
    for seed in 1..=4 {
        let report = random_walk(&netlist, &reduced.sg, 2_000, seed).unwrap();
        steps += report.steps as u64;
        violations += u64::from(report.violation.is_some());
    }
    let counted_steps = obs::value(Counter::WalkSteps);
    let counted_violations = obs::value(Counter::WalkViolations);
    obs::set_counters(false);
    obs::reset();

    assert_eq!(counted_steps, steps, "WalkSteps disagrees with WalkReport totals");
    assert_eq!(counted_violations, violations, "WalkViolations disagrees");
}

#[test]
fn sat_conflict_counter_matches_solver_exactly() {
    let _g = lock();
    obs::set_counters(true);
    obs::reset();

    // A pigeonhole instance (4 pigeons, 3 holes) forces real conflicts.
    let mut solver = simc::sat::Solver::new();
    let pigeons = 4;
    let holes = 3;
    let vars: Vec<Vec<simc::sat::Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| solver.new_var()).collect())
        .collect();
    for p in vars.iter() {
        solver.add_clause(p.iter().map(|&v| simc::sat::Lit::pos(v)));
    }
    for (i, p1) in vars.iter().enumerate() {
        for p2 in vars.iter().skip(i + 1) {
            for (&v1, &v2) in p1.iter().zip(p2) {
                solver.add_clause([simc::sat::Lit::neg(v1), simc::sat::Lit::neg(v2)]);
            }
        }
    }
    assert!(!solver.solve().is_sat());

    let counted = obs::value(Counter::SatConflicts);
    let own = solver.conflict_count();
    obs::set_counters(false);
    obs::reset();
    assert!(own > 0, "pigeonhole must conflict");
    assert_eq!(counted, own, "obs SatConflicts disagrees with Solver::conflict_count");
}
