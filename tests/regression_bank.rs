//! Replays the committed regression bank.
//!
//! Every `.sg` under `tests/regressions/` is a shrunk, canonical repro
//! of a case the fuzzer once flagged (or a structural corner worth
//! pinning). Each file carries a `# expects:` header:
//!
//! - `clean` — MC holds natively; synthesis needs no state signals;
//! - `insertion` — CSC is violated and reduction must insert signals.
//!
//! Either way the full reduce → synth → verify flow must end hazard-free,
//! through the library pipeline and through the CLI (exit 0).

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use simc::Pipeline;

/// One bank entry: file name, raw text, and its `# expects:` verdict.
struct BankCase {
    name: String,
    text: String,
    expects_insertion: bool,
}

fn load_bank() -> Vec<BankCase> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/regressions");
    let mut cases: Vec<BankCase> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("regression bank missing at {}: {e}", dir.display()))
        .map(|entry| entry.expect("bank entry readable").path())
        .filter(|path| path.extension().and_then(|e| e.to_str()) == Some("sg"))
        .map(|path| {
            let name = path.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("bank file readable");
            let expects = text
                .lines()
                .find_map(|line| line.strip_prefix("# expects:"))
                .unwrap_or_else(|| panic!("{name}: missing `# expects:` header"))
                .trim()
                .to_string();
            let expects_insertion = match expects.as_str() {
                "insertion" => true,
                "clean" => false,
                other => panic!("{name}: unknown verdict `{other}`"),
            };
            BankCase { name, text, expects_insertion }
        })
        .collect();
    cases.sort_by(|a, b| a.name.cmp(&b.name));
    assert!(!cases.is_empty(), "regression bank is empty");
    cases
}

#[test]
fn bank_contains_the_known_repros() {
    let names: Vec<String> = load_bank().into_iter().map(|c| c.name).collect();
    // The PR 3 netlist::binding bug must stay pinned forever.
    assert!(
        names.iter().any(|n| n == "autonomous_ring"),
        "autonomous_ring repro missing from the bank: {names:?}"
    );
    assert!(names.len() >= 5, "bank shrank to {names:?}");
}

#[test]
fn every_bank_entry_replays_hazard_free_through_the_pipeline() {
    for case in load_bank() {
        let mut pipeline = Pipeline::from_text(case.text.clone());
        let implemented = pipeline
            .implemented()
            .unwrap_or_else(|e| panic!("{}: synthesis failed: {e}", case.name));
        let added = implemented.added_signals();
        if case.expects_insertion {
            assert!(added > 0, "{}: expected state-signal insertion, got none", case.name);
        } else {
            assert_eq!(added, 0, "{}: clean spec suddenly needs {added} insertion(s)", case.name);
        }
        let verified = pipeline
            .verified()
            .unwrap_or_else(|e| panic!("{}: verification errored: {e}", case.name));
        assert!(
            verified.is_ok(),
            "{}: {} violation(s); first: {}",
            case.name,
            verified.violations().len(),
            verified.violations()[0]
        );
    }
}

#[test]
fn every_bank_entry_verifies_with_exit_0_through_the_cli() {
    for case in load_bank() {
        let mut child = Command::new(env!("CARGO_BIN_EXE_simc"))
            .args(["verify", "-"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("binary spawns");
        child
            .stdin
            .as_mut()
            .expect("stdin piped")
            .write_all(case.text.as_bytes())
            .expect("stdin writable");
        let output = child.wait_with_output().expect("binary runs");
        let stdout = String::from_utf8_lossy(&output.stdout);
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(
            output.status.code(),
            Some(0),
            "{}: exit {:?}\nstdout: {stdout}\nstderr: {stderr}",
            case.name,
            output.status.code()
        );
        assert!(stdout.contains("hazard-free"), "{}: {stdout}", case.name);
        if case.expects_insertion {
            assert!(
                stderr.contains("state signal"),
                "{}: expected insertion note, stderr: {stderr}",
                case.name
            );
        }
    }
}

#[test]
fn bank_entries_are_canonical() {
    // Committed repros stay in canonical form so diffs against freshly
    // shrunk repros are meaningful (same BFS numbering, sorted signals).
    for case in load_bank() {
        let sg = simc::sg::parse_sg(&case.text)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", case.name));
        let round_tripped = simc::sg::canonical_sg(&sg, &case.name);
        let body: String = case
            .text
            .lines()
            .filter(|line| !line.starts_with('#'))
            .map(|line| format!("{line}\n"))
            .collect();
        assert_eq!(
            body.trim(),
            round_tripped.trim(),
            "{}: bank entry is not in canonical form",
            case.name
        );
    }
}
