//! End-to-end flow tests: `.g` text → STG → state graph → MC-reduction →
//! synthesis → speed-independence verification, across the benchmark
//! suite and the generators.
//!
//! The slow sequencers (`ganesh_8`, `berkel3`) are exercised by the
//! release-mode repro binaries and benches; here we keep the debug-mode
//! test suite fast.

use simc::benchmarks::{generators, suite};
use simc::mc::assign::{reduce_to_mc, ReduceOptions};
use simc::mc::synth::{synthesize, Target};
use simc::mc::McCheck;
use simc::netlist::{verify, VerifyOptions};

fn full_flow(name: &str, sg: &simc::sg::StateGraph, expect_added: Option<usize>) {
    let reduced = reduce_to_mc(sg, ReduceOptions::default())
        .unwrap_or_else(|e| panic!("{name}: reduction failed: {e}"));
    if let Some(expected) = expect_added {
        assert_eq!(reduced.added, expected, "{name}: inserted signals");
    }
    // Signal insertion must preserve observable behaviour.
    let inserted: Vec<simc::sg::SignalId> = reduced
        .sg
        .signal_ids()
        .filter(|&x| sg.signal_by_name(reduced.sg.signal(x).name()).is_none())
        .collect();
    assert!(
        simc::sg::equiv::weak_bisimilar(sg, &reduced.sg, &[], &inserted),
        "{name}: reduction changed observable behaviour"
    );
    let check = McCheck::new(&reduced.sg);
    assert!(check.report().satisfied(), "{name}: MC must hold after reduction");
    for target in [Target::CElement, Target::RsLatch] {
        let implementation = synthesize(&reduced.sg, target)
            .unwrap_or_else(|e| panic!("{name}: synthesis failed: {e}"));
        let netlist = implementation
            .to_netlist()
            .unwrap_or_else(|e| panic!("{name}: netlist failed: {e}"));
        let verdict = verify(&netlist, &reduced.sg, VerifyOptions::default())
            .unwrap_or_else(|e| panic!("{name}: verification failed: {e}"));
        assert!(
            verdict.is_ok(),
            "{name} ({target:?}): {:?}",
            verdict.violations
        );
    }
}

#[test]
fn delement_flow() {
    let sg = suite::delement().stg.to_state_graph().unwrap();
    full_flow("Delement", &sg, Some(1));
}

#[test]
fn luciano_flow() {
    let sg = suite::luciano().stg.to_state_graph().unwrap();
    full_flow("luciano", &sg, Some(1));
}

#[test]
fn nowick_flow() {
    let sg = suite::nowick().stg.to_state_graph().unwrap();
    full_flow("nowick", &sg, Some(1));
}

#[test]
fn nak_pa_flow() {
    let sg = suite::nak_pa().stg.to_state_graph().unwrap();
    full_flow("nak-pa", &sg, Some(1));
}

#[test]
fn mp_forward_pkt_flow() {
    let sg = suite::mp_forward_pkt().stg.to_state_graph().unwrap();
    full_flow("mp-forward-pkt", &sg, Some(0));
}

#[test]
fn duplicator_flow() {
    let sg = suite::duplicator().stg.to_state_graph().unwrap();
    full_flow("duplicator", &sg, Some(2));
}

#[test]
fn berkel2_flow() {
    let sg = suite::berkel2().stg.to_state_graph().unwrap();
    // Our reconstruction takes 2 where the paper's .tim took 1; the count
    // is pinned so regressions surface.
    full_flow("berkel2", &sg, Some(2));
}

#[test]
fn pipelines_need_no_insertion_and_verify() {
    for n in 1..=4 {
        let sg = generators::muller_pipeline(n)
            .unwrap()
            .to_state_graph()
            .unwrap();
        full_flow(&format!("pipeline-{n}"), &sg, Some(0));
    }
}

#[test]
fn toggles_flow() {
    let sg = generators::independent_toggles(2)
        .unwrap()
        .to_state_graph()
        .unwrap();
    full_flow("toggles-2", &sg, Some(0));
}

#[test]
fn choice_ring_flow() {
    let sg = generators::choice_ring(2).unwrap().to_state_graph().unwrap();
    full_flow("choice-ring-2", &sg, None);
}

#[test]
fn g_round_trip_preserves_flow() {
    // Serialize the D-element STG back to .g, reparse, and get the same
    // reduction outcome.
    let stg = suite::delement().stg;
    let text = stg.to_g_string();
    let reparsed = simc::stg::parse_g(&text).unwrap();
    let sg1 = stg.to_state_graph().unwrap();
    let sg2 = reparsed.to_state_graph().unwrap();
    assert_eq!(sg1.state_count(), sg2.state_count());
    assert_eq!(sg1.edge_count(), sg2.edge_count());
    let r1 = reduce_to_mc(&sg1, ReduceOptions::default()).unwrap();
    let r2 = reduce_to_mc(&sg2, ReduceOptions::default()).unwrap();
    assert_eq!(r1.added, r2.added);
}

#[test]
fn generalized_synthesis_on_suite_sample() {
    // The gate-sharing synthesizer (Def. 19 / Theorem 5) also verifies.
    let sg = suite::delement().stg.to_state_graph().unwrap();
    let reduced = reduce_to_mc(&sg, ReduceOptions::default()).unwrap();
    let shared = simc::mc::gen::synthesize_generalized(&reduced.sg, Target::CElement).unwrap();
    let plain = synthesize(&reduced.sg, Target::CElement).unwrap();
    assert!(shared.cube_count() <= plain.cube_count());
    let verdict = verify(
        &shared.to_netlist().unwrap(),
        &reduced.sg,
        VerifyOptions::default(),
    )
    .unwrap();
    assert!(verdict.is_ok(), "{:?}", verdict.violations);
}

#[test]
fn autonomous_oscillator_flow() {
    // A fully autonomous spec (no inputs at all): two outputs chasing
    // each other, a+ → b+ → a- → b- →. Synthesis yields two
    // cross-coupled latches that oscillate; the verifier handles the
    // empty environment.
    let sg = simc::sg::StateGraph::from_starred_codes(
        &[
            ("a", simc::sg::SignalKind::Output),
            ("b", simc::sg::SignalKind::Output),
        ],
        &["0*0", "10*", "1*1", "01*"],
        "0*0",
    )
    .unwrap();
    assert!(sg.analysis().is_output_semimodular());
    assert!(McCheck::new(&sg).report().satisfied());
    let implementation = synthesize(&sg, Target::CElement).unwrap();
    let netlist = implementation.to_netlist().unwrap();
    let verdict = verify(&netlist, &sg, VerifyOptions::default()).unwrap();
    assert!(verdict.is_ok(), "{:?}", verdict.violations);
    assert!(verdict.explored >= 4);
}

#[test]
fn decomposition_of_verified_circuits() {
    // Fanin-bounded decomposition (basic-gate library constraint) of the
    // suite's MC implementations: the flat two-level guarantee does not
    // automatically transfer, so each decomposed circuit is re-verified
    // and its status recorded. Whatever the verdict, the verifier must
    // never error, and fanin must be bounded.
    for b in [suite::delement(), suite::luciano(), suite::mp_forward_pkt()] {
        let sg = b.stg.to_state_graph().unwrap();
        let reduced = reduce_to_mc(&sg, ReduceOptions::default()).unwrap();
        let netlist = synthesize(&reduced.sg, Target::CElement)
            .unwrap()
            .to_netlist()
            .unwrap();
        let small = netlist.decomposed(2).unwrap();
        for g in small.gate_ids() {
            assert!(small.gate_inputs(g).len() <= 2);
        }
        let verdict = verify(&small, &reduced.sg, VerifyOptions::default()).unwrap();
        // The flat implementation is hazard-free; the decomposed one may
        // or may not be — the point is that the tool *decides* it.
        let _ = verdict.is_ok();
    }
}

#[test]
fn decomposition_can_break_speed_independence() {
    // Pin the headline ablation finding: fanin-2 decomposition of the
    // Figure 3 implementation introduces unacknowledged internal nodes
    // and the verifier catches the hazard; fanin-3 leaves the circuit
    // untouched (all gates already fit) and stays clean.
    let sg = simc::benchmarks::figures::figure3();
    let netlist = synthesize(&sg, Target::CElement)
        .unwrap()
        .to_netlist()
        .unwrap();
    let fanin2 = netlist.decomposed(2).unwrap();
    let verdict = verify(&fanin2, &sg, VerifyOptions::default()).unwrap();
    assert!(
        !verdict.is_ok(),
        "fanin-2 decomposition should break SI on figure 3"
    );
    let fanin3 = netlist.decomposed(3).unwrap();
    assert_eq!(fanin3.gate_count(), netlist.gate_count());
    let verdict = verify(&fanin3, &sg, VerifyOptions::default()).unwrap();
    assert!(verdict.is_ok());
}

#[test]
fn vme_read_flow() {
    // The canonical CSC example of the synthesis literature: one state
    // signal repairs the read cycle.
    let sg = simc::benchmarks::extras::vme_read().to_state_graph().unwrap();
    full_flow("vme-read", &sg, Some(1));
}

#[test]
fn call_element_flow() {
    let sg = simc::benchmarks::extras::call_element()
        .to_state_graph()
        .unwrap();
    full_flow("call-element", &sg, None);
}

#[test]
fn c2_inverter_bound_claim() {
    // Section III's "justification of input inversions": the C2 variant
    // (separate inverter gates) is NOT speed-independent under unbounded
    // delays, but behaves under the relational bound
    // d_inv^max < D_sn^min.
    use simc::netlist::{timed_walk, Delays, GateKind, TimedOptions};
    let sg = simc::benchmarks::figures::figure3();
    let implementation = synthesize(&sg, Target::CElement).unwrap();
    let c2 = implementation.to_netlist_with_explicit_inverters().unwrap();
    // There really are separate inverters now.
    let inverters = c2
        .gate_ids()
        .filter(|&g| matches!(c2.gate_kind(g), GateKind::Not))
        .count();
    assert!(inverters > 0, "C2 must contain explicit inverters");
    // (1) Unbounded delays: the exhaustive verifier rejects C2 (the
    // inverters are never acknowledged).
    let verdict = verify(&c2, &sg, VerifyOptions::default()).unwrap();
    assert!(
        !verdict.is_ok(),
        "C2 must be hazardous under the unbounded model"
    );
    // (2) Bounded delays with fast inverters: long timed runs stay clean.
    let fast = Delays::uniform_with(&c2, 4, |g| {
        matches!(c2.gate_kind(g), GateKind::Not).then_some(1)
    });
    for seed in 1..=6 {
        let report = timed_walk(
            &c2,
            &sg,
            &fast,
            TimedOptions { seed, ..TimedOptions::default() },
        )
        .unwrap();
        assert!(report.is_ok(), "seed {seed}: {:?}", report.failure);
    }
}

#[test]
fn sequencer_family_scales() {
    // The generalized Table 1 sequencer family: insertion counts should
    // grow slowly (ideally ~log2 of the round count) and every result
    // must verify.
    for n in 1..=3 {
        let sg = simc::benchmarks::generators::sequencer(n)
            .unwrap()
            .to_state_graph()
            .unwrap();
        let reduced = reduce_to_mc(&sg, ReduceOptions::default())
            .unwrap_or_else(|e| panic!("sequencer-{n}: {e}"));
        // The search is heuristic: allow up to ~n+1 signals (the optimum
        // is ceil(log2(n+1))); regressions beyond that should surface.
        assert!(
            reduced.added <= n + 1,
            "sequencer-{n}: {} signals is excessive",
            reduced.added
        );
        let nl = synthesize(&reduced.sg, Target::CElement)
            .unwrap()
            .to_netlist()
            .unwrap();
        let verdict = verify(&nl, &reduced.sg, VerifyOptions::default()).unwrap();
        assert!(verdict.is_ok(), "sequencer-{n}");
    }
}
