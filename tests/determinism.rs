//! Parallel synthesis determinism: for every thread count, `ParallelSynth`
//! and the threaded MC-reduction must produce byte-identical reports,
//! equations and netlists to the sequential path.

use proptest::prelude::*;

use simc::benchmarks::{generators, suite};
use simc::mc::assign::{reduce_to_mc, ReduceOptions};
use simc::mc::synth::{synthesize, Target};
use simc::mc::{McCheck, ParallelSynth};
use simc::sg::{write_sg, StateGraph};

const THREADS: [usize; 3] = [1, 2, 8];

/// The fully rendered observable output of synthesis on one graph: the MC
/// report, and (when synthesis succeeds) the equations and netlist text.
fn observable(sg: &StateGraph, synth: Option<ParallelSynth>) -> String {
    let check = McCheck::new(sg);
    let report = match synth {
        Some(p) => p.report(&check),
        None => check.report(),
    };
    let mut out = report.render(sg);
    let implementation = match synth {
        Some(p) => p.synthesize(sg, Target::CElement),
        None => synthesize(sg, Target::CElement),
    };
    if let Ok(imp) = implementation {
        out.push_str(&imp.equations());
        out.push_str(&format!("{:?}", imp.to_netlist().map(|nl| nl.stats().to_string())));
    }
    out
}

#[test]
fn suite_benchmarks_identical_across_thread_counts() {
    for b in suite::all() {
        let sg = b.stg.to_state_graph().expect("suite benchmark reaches");
        let sequential = observable(&sg, None);
        for threads in THREADS {
            let parallel = observable(&sg, Some(ParallelSynth::new(threads)));
            assert_eq!(parallel, sequential, "{}: {threads} threads diverged", b.name);
        }
    }
}

#[test]
fn mc_reduction_identical_across_thread_counts() {
    // The threaded beam search must visit the same frontier in the same
    // order: identical reduced graphs (rendered to `.g` text), insertion
    // counts and logs for every thread count.
    // Capped at the three fastest benchmarks: the beam search dominates
    // tier-1 time otherwise (the full suite runs in `repro_pipeline`).
    for b in suite::all().into_iter().take(3) {
        let sg = b.stg.to_state_graph().expect("suite benchmark reaches");
        let baseline = reduce_to_mc(&sg, ReduceOptions::default()).expect("reduces");
        for threads in THREADS {
            let opts = ReduceOptions { threads, ..ReduceOptions::default() };
            let result = reduce_to_mc(&sg, opts).expect("reduces");
            assert_eq!(result.added, baseline.added, "{}: {threads} threads", b.name);
            assert_eq!(result.log, baseline.log, "{}: {threads} threads", b.name);
            assert_eq!(
                write_sg(&result.sg, b.name),
                write_sg(&baseline.sg, b.name),
                "{}: {threads} threads",
                b.name
            );
        }
    }
}

#[test]
fn portfolio_reduction_identical_across_thread_counts() {
    // The portfolio fallback races differently-phase-biased solver
    // configurations; the race must not leak scheduling into results.
    // Synthesize the reduced graph to a netlist and compare the rendered
    // text byte for byte across thread counts, portfolio on and off-size.
    for b in suite::all().into_iter().take(4) {
        let sg = b.stg.to_state_graph().expect("suite benchmark reaches");
        let netlist_of = |opts: ReduceOptions| {
            let reduced = reduce_to_mc(&sg, opts).expect("reduces");
            let implementation =
                synthesize(&reduced.sg, Target::CElement).expect("synthesizes");
            format!(
                "{}\n{}\n{:?}",
                write_sg(&reduced.sg, b.name),
                implementation.equations(),
                implementation.to_netlist().map(|nl| nl.stats().to_string())
            )
        };
        let baseline =
            netlist_of(ReduceOptions { threads: 1, portfolio: 3, ..ReduceOptions::default() });
        for threads in THREADS {
            let got = netlist_of(ReduceOptions {
                threads,
                portfolio: 3,
                ..ReduceOptions::default()
            });
            assert_eq!(got, baseline, "{}: {threads} threads diverged", b.name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_graphs_identical_across_thread_counts(
        kind in 0usize..3,
        size in 2usize..5,
    ) {
        let stg = match kind {
            0 => generators::muller_pipeline(size),
            1 => generators::independent_toggles(size),
            _ => generators::choice_ring(size),
        }
        .unwrap();
        let sg = stg.to_state_graph().unwrap();
        let sequential = observable(&sg, None);
        for threads in THREADS {
            let parallel = observable(&sg, Some(ParallelSynth::new(threads)));
            prop_assert_eq!(&parallel, &sequential, "{} threads diverged", threads);
        }
    }
}
