//! Property-based tests over the workspace invariants, driven by the
//! synthetic workload generators.

use std::sync::Mutex;

use proptest::prelude::*;

use simc::benchmarks::generators;
use simc::fuzz::{self, GenConfig, Recipe, Shape};
use simc::mc::synth::{synthesize, Target};
use simc::mc::McCheck;
use simc::netlist::{verify, VerifyOptions};
use simc::obs::{self, Counter};
use simc::sg::{StateGraph, Transition};

/// Serializes the observability property test against itself; the other
/// tests in this binary still run concurrently and may bump global
/// counters, so its assertions are delta-based and pollution-tolerant.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn pipeline_sg(n: usize) -> StateGraph {
    generators::muller_pipeline(n)
        .expect("generator builds")
        .to_state_graph()
        .expect("pipeline reaches")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Region decomposition partitions excitation: every state is in
    /// exactly one ER of each signal it excites, none otherwise.
    #[test]
    fn regions_partition_excitation(n in 1usize..5, k in 1usize..4) {
        let sg = if n % 2 == 0 {
            generators::independent_toggles(k).unwrap().to_state_graph().unwrap()
        } else {
            pipeline_sg(n)
        };
        let regions = sg.regions();
        for s in sg.state_ids() {
            for sig in sg.signal_ids() {
                let containing = regions
                    .ers()
                    .filter(|(_, er)| er.signal() == sig && er.contains(s))
                    .count();
                prop_assert_eq!(containing, usize::from(sg.is_excited(s, sig)));
            }
        }
    }

    /// The paper's value sets partition the state space per signal.
    #[test]
    fn value_sets_partition(n in 1usize..5) {
        let sg = pipeline_sg(n);
        let regions = sg.regions();
        for sig in sg.signal_ids() {
            let total = regions.zero_set(&sg, sig).len()
                + regions.zero_star_set(&sg, sig).len()
                + regions.one_set(&sg, sig).len()
                + regions.one_star_set(&sg, sig).len();
            prop_assert_eq!(total, sg.state_count());
        }
    }

    /// Theorem 4 / Corollary 1: wherever the MC requirement holds, CSC
    /// and persistency hold.
    #[test]
    fn mc_implies_csc_and_persistency(n in 1usize..5, k in 1usize..4) {
        for sg in [
            pipeline_sg(n),
            generators::independent_toggles(k).unwrap().to_state_graph().unwrap(),
            generators::choice_ring(k).unwrap().to_state_graph().unwrap(),
        ] {
            let check = McCheck::new(&sg);
            if check.report().satisfied() {
                prop_assert!(sg.analysis().has_csc());
                prop_assert!(check.regions().is_output_persistent(&sg));
            }
        }
    }

    /// Theorem 3 end to end: MC-satisfying specs synthesize to verified
    /// hazard-free circuits in both implementation styles.
    #[test]
    fn theorem3_on_generated_specs(n in 1usize..4, k in 1usize..3) {
        for sg in [
            pipeline_sg(n),
            generators::independent_toggles(k).unwrap().to_state_graph().unwrap(),
        ] {
            let check = McCheck::new(&sg);
            prop_assume!(check.report().satisfied());
            for target in [Target::CElement, Target::RsLatch] {
                let implementation = synthesize(&sg, target).unwrap();
                let netlist = implementation.to_netlist().unwrap();
                let verdict = verify(&netlist, &sg, VerifyOptions::default()).unwrap();
                prop_assert!(verdict.is_ok(), "{:?}", verdict.violations);
            }
        }
    }

    /// MC cover cubes really are monotonous covers (self-check of the SAT
    /// search against the definitional checker).
    #[test]
    fn mc_cubes_satisfy_definition(n in 1usize..5) {
        let sg = pipeline_sg(n);
        let check = McCheck::new(&sg);
        for (er, region) in check.regions().ers() {
            if !sg.signal(region.signal()).kind().is_non_input() {
                continue;
            }
            if let Ok(cube) = check.mc_cube(er) {
                prop_assert!(check.is_monotonous_cover(er, cube));
                prop_assert!(check.is_correct_cover(er, cube));
            }
        }
    }

    /// Lemma 3 cubes cover their regions and only shrink under literal
    /// addition: the maximal cube is contained in every candidate's span.
    #[test]
    fn lemma3_cube_covers_region(n in 1usize..5) {
        let sg = pipeline_sg(n);
        let check = McCheck::new(&sg);
        for (er, region) in check.regions().ers() {
            let cube = check.lemma3_cube(er);
            for &s in region.states() {
                prop_assert!(check.covers_state(cube, s));
            }
        }
    }

    /// Starred-code round trip: rendering every state and rebuilding
    /// reproduces the graph exactly (state/edge counts and codes).
    #[test]
    fn starred_code_round_trip(n in 1usize..5) {
        let sg = pipeline_sg(n);
        let signals: Vec<(String, simc::sg::SignalKind)> = sg
            .signal_ids()
            .map(|s| (sg.signal(s).name().to_string(), sg.signal(s).kind()))
            .collect();
        let signal_refs: Vec<(&str, simc::sg::SignalKind)> =
            signals.iter().map(|(n, k)| (n.as_str(), *k)).collect();
        let codes: Vec<String> = sg.state_ids().map(|s| sg.starred_code(s)).collect();
        let code_refs: Vec<&str> = codes.iter().map(String::as_str).collect();
        let rebuilt = StateGraph::from_starred_codes(
            &signal_refs,
            &code_refs,
            &sg.starred_code(sg.initial()),
        )
        .unwrap();
        prop_assert_eq!(rebuilt.state_count(), sg.state_count());
        prop_assert_eq!(rebuilt.edge_count(), sg.edge_count());
    }

    /// Observability invariants: child span time never exceeds its
    /// parent's, Sum counters are monotone under additional work, and the
    /// SAT conflict counter tracks `Solver::conflict_count` exactly when
    /// no concurrent test is also solving.
    #[test]
    fn observability_invariants(n in 1usize..4, pigeons in 3u32..6) {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        obs::set_stats(true);

        // -- Span nesting: the children of a span account for at most its
        // own wall-clock time. The names are unique to this test, so
        // concurrent tests cannot contribute to these paths.
        {
            let parent = obs::span("prop_parent");
            for _ in 0..2 {
                let child = obs::span("prop_child");
                let sg = pipeline_sg(n);
                let _ = sg.regions();
                child.finish();
            }
            parent.finish();
        }
        let report = obs::report();
        let parent = report.span("prop_parent").expect("parent span recorded");
        let child_sum: f64 =
            report.children("prop_parent").iter().map(|s| s.seconds).sum();
        // Tiny float grace: child times are measured independently.
        prop_assert!(
            child_sum <= parent.seconds + 1e-6,
            "children sum {child_sum}s exceeds parent {}s",
            parent.seconds
        );
        prop_assert!(parent.calls >= 1);

        // -- Monotonicity: doing more work never decreases a Sum counter.
        let before: Vec<u64> =
            Counter::ALL.iter().map(|&c| obs::value(c)).collect();
        let sg = pipeline_sg(n);
        let check = McCheck::new(&sg);
        let _ = check.report();
        for (&c, &b) in Counter::ALL.iter().zip(&before) {
            if c.kind() == obs::Kind::Sum {
                prop_assert!(obs::value(c) >= b, "{} decreased", c.name());
            }
        }
        prop_assert!(
            obs::value(Counter::CoverCubesChecked)
                > before[Counter::ALL.iter().position(|&c| c == Counter::CoverCubesChecked).unwrap()],
            "MC check recorded no cover cubes"
        );

        // -- SAT cross-check on an unsatisfiable pigeonhole instance.
        let solves_before = obs::value(Counter::SatSolves);
        let conflicts_before = obs::value(Counter::SatConflicts);
        let holes = pigeons - 1;
        let mut solver = simc::sat::Solver::new();
        let vars: Vec<Vec<simc::sat::Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| solver.new_var()).collect())
            .collect();
        for p in &vars {
            solver.add_clause(p.iter().map(|&v| simc::sat::Lit::pos(v)));
        }
        for (i, p1) in vars.iter().enumerate() {
            for p2 in vars.iter().skip(i + 1) {
                for (&v1, &v2) in p1.iter().zip(p2) {
                    solver.add_clause([
                        simc::sat::Lit::neg(v1),
                        simc::sat::Lit::neg(v2),
                    ]);
                }
            }
        }
        prop_assert!(!solver.solve().is_sat());
        let own_conflicts = solver.conflict_count();
        let solve_delta = obs::value(Counter::SatSolves) - solves_before;
        let conflict_delta = obs::value(Counter::SatConflicts) - conflicts_before;
        obs::set_stats(false);
        prop_assert!(own_conflicts > 0, "pigeonhole must conflict");
        if solve_delta == 1 {
            // No concurrent solver ran: the counter must agree exactly.
            prop_assert_eq!(conflict_delta, own_conflicts);
        } else {
            prop_assert!(conflict_delta >= own_conflicts);
        }
    }

    /// Delta-debugging shrinker invariants: the result of shrinking still
    /// satisfies the failing predicate, is never larger than the
    /// original, is 1-minimal, and still builds a valid state graph.
    #[test]
    fn shrinker_preserves_failure_and_minimality(
        seed in any::<u64>(),
        signals in 1usize..6,
        concurrency in 0u64..101,
        predicate in 0usize..3,
    ) {
        let mut rng = fuzz::Rng::new(seed);
        let cfg = GenConfig { signals, concurrency, csc_injection: predicate == 0 };
        let recipe = fuzz::random_recipe(&mut rng, cfg);

        fn has_double(s: &Shape) -> bool {
            match s {
                Shape::Leaf { double, .. } => *double,
                Shape::Seq(c) | Shape::Par(c) => c.iter().any(has_double),
            }
        }
        fn has_par(s: &Shape) -> bool {
            match s {
                Shape::Leaf { .. } => false,
                Shape::Par(_) => true,
                Shape::Seq(c) => c.iter().any(has_par),
            }
        }
        // Structural stand-ins for "fails some oracle": each depends on a
        // feature shrinking tries hard to remove.
        let fails = |r: &Recipe| match predicate {
            0 => has_double(&r.shape),
            1 => has_par(&r.shape),
            _ => r.leaf_count() >= 2,
        };
        prop_assume!(fails(&recipe));

        let (shrunk, steps) = fuzz::shrink(&recipe, fails);
        prop_assert!(fails(&shrunk), "shrunk recipe no longer fails: {shrunk:?}");
        prop_assert!(shrunk.size() <= recipe.size());
        prop_assert!(steps == 0 || shrunk.size() < recipe.size());
        // 1-minimal: no single further transform still fails.
        for variant in fuzz::one_step_shrinks(&shrunk) {
            prop_assert!(!fails(&variant), "not 1-minimal: {variant:?}");
        }
        // The repro still builds and stays well-formed.
        let sg = fuzz::gen::to_state_graph(&shrunk).expect("shrunken recipe builds");
        prop_assert!(sg.analysis().is_semimodular());
    }

    /// Campaign mutators preserve the generator invariants — every
    /// mutant is a live, 1-safe, buildable recipe — and the shrinker
    /// stays strictly size-decreasing on *mutated* inputs, not just
    /// fresh ones (mutants reach shapes, e.g. >2-child nodes after
    /// splices, that fresh generation never produces).
    #[test]
    fn mutants_stay_well_formed_and_shrinkable(
        seed in any::<u64>(),
        base_signals in 1usize..5,
        donor_signals in 1usize..6,
        strategy in 0usize..4,
    ) {
        let base = fuzz::random_recipe(
            &mut fuzz::Rng::new(seed),
            GenConfig { signals: base_signals, concurrency: 50, csc_injection: seed.is_multiple_of(3) },
        );
        let donor = fuzz::random_recipe(
            &mut fuzz::Rng::new(seed ^ 0xD0_0D),
            GenConfig { signals: donor_signals, concurrency: 70, csc_injection: seed.is_multiple_of(2) },
        );
        let strategy = [
            fuzz::Mutation::Splice,
            fuzz::Mutation::Resize,
            fuzz::Mutation::LeafInject,
            fuzz::Mutation::PhaseFlip,
        ][strategy];
        let mut rng = fuzz::Rng::new(seed ^ 0xCAFE);
        let mutant = fuzz::mutate::apply(&mut rng, strategy, &base, &donor);

        // Live and 1-safe by construction: the STG builds and its state
        // graph is semimodular.
        prop_assert!(mutant.kinds.len() <= fuzz::MAX_MUTANT_SIGNALS);
        let sg = fuzz::gen::to_state_graph(&mutant)
            .expect("mutant recipe must build a valid STG");
        prop_assert!(sg.analysis().is_semimodular(), "{strategy:?} mutant lost semimodularity");

        // Strict decrease on the mutated input: every one-step shrink of
        // the mutant is strictly smaller, so delta-debugging terminates.
        for variant in fuzz::one_step_shrinks(&mutant) {
            prop_assert!(
                variant.size() < mutant.size(),
                "{strategy:?}: shrink variant {variant:?} not smaller than {mutant:?}"
            );
        }
        // And a full shrink run bottoms out at a 1-minimal recipe.
        let (shrunk, steps) = fuzz::shrink(&mutant, |r| r.leaf_count() >= 1);
        prop_assert!(steps == 0 || shrunk.size() < mutant.size());
        prop_assert!(fuzz::one_step_shrinks(&shrunk).is_empty());
    }

    /// Firing any enabled transition toggles exactly that signal's bit.
    #[test]
    fn firing_is_single_bit(n in 1usize..5) {
        let sg = pipeline_sg(n);
        for s in sg.state_ids() {
            for &(t, next) in sg.succs(s) {
                let diff = sg.code(s).bits() ^ sg.code(next).bits();
                prop_assert_eq!(diff, 1 << t.signal.index());
                prop_assert_eq!(sg.fire(s, t), Some(next));
                let reverse = Transition { signal: t.signal, dir: t.dir.opposite() };
                prop_assert_eq!(sg.fire(s, reverse), None);
            }
        }
    }
}

/// Partial-order reduction soundness: the stubborn-set reduced verifier
/// returns the same verdict and the same violation list as full
/// exploration, on every suite benchmark and on 200 fixed-seed
/// fuzz-generated specs. Reduction may only change *how many* composed
/// states are visited, never what is reported.
#[test]
fn reduced_verification_matches_full_exploration() {
    use simc::mc::assign::{reduce_to_mc, ReduceOptions};

    fn check_both(name: &str, sg: &StateGraph) {
        let Ok(implementation) = synthesize(sg, Target::CElement) else { return };
        let Ok(netlist) = implementation.to_netlist() else { return };
        let opts = VerifyOptions { max_states: 1 << 18, ..VerifyOptions::default() };
        let reduced = verify(&netlist, sg, VerifyOptions { reduction: true, ..opts });
        let full = verify(&netlist, sg, VerifyOptions { reduction: false, ..opts });
        match (reduced, full) {
            (Ok(r), Ok(f)) => {
                assert_eq!(r.is_ok(), f.is_ok(), "{name}: verdicts disagree");
                assert_eq!(
                    format!("{:?}", r.violations),
                    format!("{:?}", f.violations),
                    "{name}: violation lists disagree"
                );
                assert!(
                    r.explored <= f.explored,
                    "{name}: reduction explored more ({} > {})",
                    r.explored,
                    f.explored
                );
            }
            // Budget blow-ups must at least agree in kind.
            (r, f) => assert_eq!(r.is_err(), f.is_err(), "{name}: error-ness disagrees"),
        }
    }

    for b in simc::benchmarks::suite::all() {
        let sg = b.stg.to_state_graph().expect("suite benchmark reaches");
        let reduced = reduce_to_mc(&sg, ReduceOptions::default())
            .expect("suite benchmark reduces");
        check_both(b.name, &reduced.sg);
    }

    let mut rng = fuzz::Rng::new(0x50EED_DAC94);
    let budget = ReduceOptions {
        max_signals: 4,
        max_candidates: 12,
        beam_width: 6,
        branch: 4,
        ..ReduceOptions::default()
    };
    let mut checked = 0;
    let mut case = 0;
    while checked < 200 {
        case += 1;
        let cfg = GenConfig {
            signals: 1 + case % 5,
            concurrency: (case as u64 * 37) % 101,
            csc_injection: case % 3 == 0,
        };
        let recipe = fuzz::random_recipe(&mut rng, cfg);
        let Ok(sg) = fuzz::gen::to_state_graph(&recipe) else { continue };
        let working = if McCheck::new(&sg).report().satisfied() {
            sg
        } else {
            match reduce_to_mc(&sg, budget) {
                Ok(reduced) => reduced.sg,
                Err(_) => continue,
            }
        };
        check_both(&format!("fuzz case {case}"), &working);
        checked += 1;
    }
}

/// Fixed-seed fuzz regression: the reference campaign stays clean and
/// its outcome is byte-identical across thread counts — pinning both the
/// oracle results and the determinism of the parallel synthesis path.
#[test]
fn fuzz_regression_fixed_seed_across_threads() {
    let mut summaries = Vec::new();
    for threads in [1, 2, 8] {
        let report = fuzz::run(fuzz::FuzzConfig {
            seed: 0xDAC94,
            iters: 40,
            threads,
            ..fuzz::FuzzConfig::default()
        });
        assert!(report.is_ok(), "threads={threads}: {}", report.summary());
        assert!(report.faults_injected > 0, "threads={threads}: no faults exercised");
        summaries.push(report.summary());
    }
    assert_eq!(summaries[0], summaries[1]);
    assert_eq!(summaries[1], summaries[2]);
}
