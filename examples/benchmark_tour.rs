//! Benchmark tour: run the whole reconstructed Table 1 suite.
//!
//! For every circuit: reachability, MC analysis, state-signal insertion,
//! synthesis and verification — one line per benchmark, plus the scalable
//! Muller-pipeline generator as an encore.
//!
//! Run with: `cargo run --release --example benchmark_tour`

use std::time::Instant;

use simc::benchmarks::{generators, suite};
use simc::mc::assign::{reduce_to_mc, ReduceOptions};
use simc::mc::synth::{synthesize, Target};
use simc::netlist::{verify, VerifyOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{:<16} {:>7} {:>6} {:>6} {:>9} {:>9}", "benchmark", "states", "added", "terms", "verified", "ms");
    for b in suite::all() {
        let start = Instant::now();
        let sg = b.stg.to_state_graph()?;
        let line = match reduce_to_mc(&sg, ReduceOptions::default()) {
            Ok(reduced) => {
                let implementation = synthesize(&reduced.sg, Target::CElement)?;
                let netlist = implementation.to_netlist()?;
                let verdict = verify(&netlist, &reduced.sg, VerifyOptions::default())?;
                format!(
                    "{:<16} {:>7} {:>6} {:>6} {:>9} {:>9}",
                    b.name,
                    sg.state_count(),
                    reduced.added,
                    implementation.cube_count(),
                    if verdict.is_ok() { "yes" } else { "NO" },
                    start.elapsed().as_millis()
                )
            }
            Err(e) => format!("{:<16} {:>7} {e}", b.name, sg.state_count()),
        };
        println!("{line}");
    }

    println!("\nMuller pipelines (already MC-satisfying; pure synthesis):");
    for n in 1..=5 {
        let start = Instant::now();
        let sg = generators::muller_pipeline(n)?.to_state_graph()?;
        let implementation = synthesize(&sg, Target::CElement)?;
        let verdict = verify(&implementation.to_netlist()?, &sg, VerifyOptions::default())?;
        println!(
            "  n={n}: {:>5} states, {} product terms, verified: {}, {} ms",
            sg.state_count(),
            implementation.cube_count(),
            verdict.is_ok(),
            start.elapsed().as_millis()
        );
    }
    Ok(())
}
