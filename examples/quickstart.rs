//! Quickstart: specify, analyze, synthesize, verify.
//!
//! Builds the paper's Figure 1 state graph from its starred codes, shows
//! why it cannot be implemented directly (the Monotonous Cover
//! requirement fails), repairs it by state-signal insertion, synthesizes
//! the standard C-implementation and verifies the result hazard-free.
//!
//! Run with: `cargo run --example quickstart`

use simc::mc::assign::{reduce_to_mc, ReduceOptions};
use simc::mc::synth::{synthesize, Target};
use simc::mc::McCheck;
use simc::netlist::{verify, VerifyOptions};
use simc::sg::{SignalKind, StateGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Specify: the paper's Figure 1, exactly as printed (digit = signal
    //    value, star = excited).
    let sg = StateGraph::from_starred_codes(
        &[
            ("a", SignalKind::Input),
            ("b", SignalKind::Input),
            ("c", SignalKind::Output),
            ("d", SignalKind::Output),
        ],
        &[
            "0*0*00", "100*0*", "010*0", "1*010*", "100*1", "0*110", "1*0*11",
            "1110*", "1*111", "011*1", "01*01", "0001*", "0010*", "00*11",
        ],
        "0*0*00",
    )?;
    println!("spec: {} states over {} signals", sg.state_count(), sg.signal_count());
    println!("output semi-modular: {}", sg.analysis().is_output_semimodular());

    // 2. Analyze: the Monotonous Cover requirement (Def. 18).
    let report = McCheck::new(&sg).report();
    println!("\nMC report:\n{}", report.render(&sg));

    // 3. Repair: insert state signals until MC holds (Section V).
    let reduced = reduce_to_mc(&sg, ReduceOptions::default())?;
    println!("inserted {} state signal(s)", reduced.added);
    for line in &reduced.log {
        println!("  {line}");
    }

    // 4. Synthesize: the standard C-implementation (Figure 2a).
    let implementation = synthesize(&reduced.sg, Target::CElement)?;
    println!("\nequations:\n{}", implementation.equations());

    // 5. Verify: exhaustive speed-independence check against the spec.
    let netlist = implementation.to_netlist()?;
    let verdict = verify(&netlist, &reduced.sg, VerifyOptions::default())?;
    println!(
        "verification: {} ({} composed states explored)",
        if verdict.is_ok() { "hazard-free" } else { "HAZARDOUS" },
        verdict.explored
    );
    assert!(verdict.is_ok());
    Ok(())
}
