//! Export tour: every interchange format the workspace speaks.
//!
//! Takes the VME bus read controller through the flow and prints it as
//! `.g` (Petri net), `.sg` (state graph), Graphviz dot (spec and
//! netlist), paper-style equations and structural Verilog.
//!
//! Run with: `cargo run --example export_formats`

use simc::benchmarks::extras;
use simc::mc::assign::{reduce_to_mc, ReduceOptions};
use simc::mc::synth::{synthesize, Target};
use simc::netlist::{primitive_library, to_verilog};
use simc::sg::write_sg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stg = extras::vme_read();
    println!("==== .g (signal transition graph) ====");
    print!("{}", stg.to_g_string());

    let sg = stg.to_state_graph()?;
    let repaired = reduce_to_mc(&sg, ReduceOptions::default())?;
    println!("\n==== .sg (state graph, after inserting {} signal) ====", repaired.added);
    print!("{}", write_sg(&repaired.sg, "vme-read-csc"));

    println!("\n==== spec dot (first lines) ====");
    for line in repaired.sg.to_dot().lines().take(6) {
        println!("{line}");
    }

    let implementation = synthesize(&repaired.sg, Target::CElement)?;
    println!("\n==== equations ====");
    print!("{}", implementation.equations());

    let netlist = implementation.to_netlist()?;
    println!("\n==== netlist dot (first lines) ====");
    for line in netlist.to_dot().lines().take(6) {
        println!("{line}");
    }

    println!("\n==== structural Verilog ====");
    print!("{}", primitive_library());
    print!("{}", to_verilog(&netlist, "vme_read"));
    Ok(())
}
