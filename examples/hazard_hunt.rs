//! Hazard hunt: why "correct covers" are not enough.
//!
//! Reproduces the paper's Example 2 as a library user would encounter it:
//! a persistent specification (Figure 4) on which the pre-MC
//! state-of-the-art synthesizer produces a circuit that *looks* right —
//! every cube covers its region correctly — yet a gate can start
//! switching and get pre-empted. The speed-independence verifier replays
//! the exact failure; MC-reduction repairs the spec.
//!
//! Run with: `cargo run --example hazard_hunt`

use simc::benchmarks::figures;
use simc::mc::assign::{reduce_to_mc, ReduceOptions};
use simc::mc::baseline::synthesize_baseline;
use simc::mc::synth::{synthesize, Target};
use simc::netlist::{verify, VerifyOptions, ViolationKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = figures::figure4();
    println!(
        "figure 4: {} states, persistent for outputs: {}",
        spec.state_count(),
        spec.regions().is_output_persistent(&spec)
    );

    // The baseline accepts this spec (its covers are all correct)…
    let baseline = synthesize_baseline(&spec, Target::CElement)?;
    println!("\nbaseline equations:\n{}", baseline.equations());

    // …but the circuit is hazardous, and the verifier shows exactly how:
    // an AND gate of Sb is disabled while excited.
    let netlist = baseline.to_netlist()?;
    let verdict = verify(&netlist, &spec, VerifyOptions::default())?;
    assert!(!verdict.is_ok(), "the baseline must be hazardous here");
    for violation in &verdict.violations {
        if let ViolationKind::Disabled { .. } = violation.kind {
            println!("hazard witness:\n  {}", verdict.describe(&netlist, &spec, violation));
        }
    }

    // MC-reduction inserts one signal; the new implementation verifies.
    let reduced = reduce_to_mc(&spec, ReduceOptions::default())?;
    println!("\nrepaired with {} inserted signal(s)", reduced.added);
    let fixed = synthesize(&reduced.sg, Target::CElement)?;
    let verdict = verify(&fixed.to_netlist()?, &reduced.sg, VerifyOptions::default())?;
    println!(
        "repaired implementation: {}",
        if verdict.is_ok() { "hazard-free" } else { "still hazardous!" }
    );
    assert!(verdict.is_ok());
    Ok(())
}
