//! STG to silicon: the full front-to-back flow on a textual spec.
//!
//! Parses a Signal Transition Graph in the SIS/petrify `.g` format (here:
//! the Varshavsky D-element, a handshake adapter with the classic CSC
//! conflict), translates it to a state graph by reachability, repairs the
//! coding by state-signal insertion, and emits both the C-element and the
//! dual-rail RS implementations — each verified speed-independent.
//!
//! Run with: `cargo run --example stg_to_silicon`

use simc::mc::assign::{reduce_to_mc, ReduceOptions};
use simc::mc::synth::{synthesize, Target};
use simc::netlist::{verify, VerifyOptions};
use simc::stg::parse_g;

const D_ELEMENT: &str = "
.model delement
.inputs r a2
.outputs a r2
.graph
r+ r2+
r2+ a2+
a2+ r2-
r2- a2-
a2- a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Front end: .g text → Petri net → state graph.
    let stg = parse_g(D_ELEMENT)?;
    println!("parsed `{}`: {}", stg.name(), stg);
    let sg = stg.to_state_graph()?;
    println!(
        "reachability: {} states, CSC: {}",
        sg.state_count(),
        sg.analysis().has_csc()
    );

    // Coding repair: the D-element needs one state signal.
    let reduced = reduce_to_mc(&sg, ReduceOptions::default())?;
    println!("inserted {} state signal(s)", reduced.added);

    // Back end: both implementation styles of Figure 2.
    for (target, label) in [
        (Target::CElement, "standard C-implementation"),
        (Target::RsLatch, "standard RS-implementation"),
    ] {
        let implementation = synthesize(&reduced.sg, target)?;
        let netlist = implementation.to_netlist()?;
        let verdict = verify(&netlist, &reduced.sg, VerifyOptions::default())?;
        println!(
            "\n{label}: {} — verification: {}",
            netlist.stats(),
            if verdict.is_ok() { "hazard-free" } else { "HAZARDOUS" }
        );
        print!("{}", implementation.equations());
        assert!(verdict.is_ok());
    }
    Ok(())
}
