#!/usr/bin/env bash
# Tier-1 CI gate: release build, full test suite, clippy with warnings
# denied, and a pipeline-benchmark smoke check against the committed
# baseline. Run from anywhere; operates on the workspace root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release
# `crates/bench` is outside default-members; build its repro binaries
# explicitly so the smoke checks below run current code, not a stale
# artifact.
cargo build --release -p simc-bench

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> simc fuzz --seed 0xDAC94 --iters 200"
# Fixed-seed differential-fuzzing smoke: exits nonzero on any oracle
# disagreement or any injected netlist fault the verifier misses.
./target/release/simc fuzz --seed 0xDAC94 --iters 200

echo "==> simc fuzz --campaign: fixed-seed 2-shard mini-campaign"
# Coverage-guided campaign smoke. Each run gets its own fresh corpus
# directory — a shared corpus would warm-start the second run and change
# its output. The merged summary must be byte-identical across repeated
# runs and across shard counts (the campaign's determinism contract),
# and the covered-edge count must meet the committed floor (48 cases at
# seed 0xDAC94 reach 324 quotiented edges; the floor leaves headroom
# for deliberate generator changes, not for coverage regressions).
fuzz_dir="$(mktemp -d)"
trap 'rm -rf "$fuzz_dir"' EXIT
for run in a b; do
    ./target/release/simc fuzz --campaign --seed 0xDAC94 --iters 48 --shards 2 \
        --corpus "$fuzz_dir/corpus_$run" --out "$fuzz_dir/run_$run.json"
done
./target/release/simc fuzz --campaign --seed 0xDAC94 --iters 48 --shards 1 \
    --corpus "$fuzz_dir/corpus_c" --out "$fuzz_dir/run_c.json"
cmp "$fuzz_dir/run_a.json" "$fuzz_dir/run_b.json" \
    || { echo "error: campaign summary differs between identical runs" >&2; exit 1; }
cmp "$fuzz_dir/run_a.json" "$fuzz_dir/run_c.json" \
    || { echo "error: campaign summary differs across shard counts" >&2; exit 1; }
edges="$(grep -o '"coverage": {"edges": [0-9]*' "$fuzz_dir/run_a.json" | grep -o '[0-9]*$')"
[ -n "$edges" ] && [ "$edges" -ge 300 ] \
    || { echo "error: campaign covered ${edges:-0} edges, floor is 300" >&2; exit 1; }

echo "==> repro_pipeline --smoke --check BENCH_pipeline.json"
# 3-benchmark smoke sweep (duplicator, berkel3, ganesh_8); fails on
# malformed JSON or on counters / structural columns diverging from the
# committed baseline, on totals regressing more than 10% (+50ms grace),
# or on the state-assignment phase (`assign_s`) regressing more than 20%
# (+20ms grace) — the ganesh_8 assign gate.
smoke_out="$(mktemp)"
trap 'rm -f "$smoke_out"; rm -rf "$fuzz_dir"' EXIT
./target/release/repro_pipeline --smoke --check BENCH_pipeline.json --out "$smoke_out"

echo "==> scale-family smoke: synthesize + verify scale-ring-16"
# Bounded symbolic-engine smoke: a 131 072-state spec must synthesize
# and verify hazard-free within the CI budget — tractable only with the
# arena-based reachability and stubborn-set reduction. Byte-identical
# output across thread counts guards the parallel determinism contract.
scale_dir="$(mktemp -d)"
trap 'rm -f "$smoke_out"; rm -rf "$fuzz_dir" "$scale_dir"' EXIT
for t in 1 2 8; do
    ./target/release/simc synth benchmarks/scale-ring-16 --threads "$t" \
        > "$scale_dir/synth_$t.out"
    ./target/release/simc verify benchmarks/scale-ring-16 --threads "$t" \
        > "$scale_dir/verify_$t.out"
    grep -q 'hazard-free' "$scale_dir/verify_$t.out" \
        || { echo "error: scale-ring-16 failed to verify with $t thread(s)" >&2; exit 1; }
done
cmp "$scale_dir/synth_1.out" "$scale_dir/synth_2.out" \
    && cmp "$scale_dir/synth_1.out" "$scale_dir/synth_8.out" \
    || { echo "error: scale netlists differ across thread counts" >&2; exit 1; }
cmp "$scale_dir/verify_1.out" "$scale_dir/verify_2.out" \
    && cmp "$scale_dir/verify_1.out" "$scale_dir/verify_8.out" \
    || { echo "error: scale verification differs across thread counts" >&2; exit 1; }

echo "==> loadgen --smoke --contract: simc serve daemon smoke"
# Daemon smoke on an ephemeral port: loadgen spawns the real binary,
# probes the status contract (400/429/404/405), replays the smoke
# benchmarks with concurrent duplicates, and exits nonzero unless
# single-flight shows joins (serve.inflight_joined > 0), the warm pass
# revives from the shared cache at >= 90% hit-rate, and the daemon
# drains cleanly on POST /shutdown.
./target/release/loadgen --server ./target/release/simc --smoke --contract

echo "==> simc batch cold/warm over the built-in suite"
# Batch smoke with a shared on-disk artifact cache: the warm second pass
# must be byte-identical to the cold first pass and must actually hit
# the cache (no recomputation).
batch_dir="$(mktemp -d)"
trap 'rm -f "$smoke_out"; rm -rf "$fuzz_dir" "$scale_dir" "$batch_dir"' EXIT
printf 'benchmarks/*\n' > "$batch_dir/manifest.txt"
./target/release/simc batch "$batch_dir/manifest.txt" \
    --cache-dir "$batch_dir/cache" > "$batch_dir/cold.json"
./target/release/simc batch "$batch_dir/manifest.txt" \
    --cache-dir "$batch_dir/cache" \
    --stats-json "$batch_dir/warm_stats.json" > "$batch_dir/warm.json"
cmp "$batch_dir/cold.json" "$batch_dir/warm.json" \
    || { echo "error: warm batch output differs from cold" >&2; exit 1; }
grep -q '"jobs_failed": 0' "$batch_dir/cold.json" \
    || { echo "error: batch jobs failed" >&2; exit 1; }
grep -q '"cache.misses": 0' "$batch_dir/warm_stats.json" \
    || { echo "error: warm batch pass missed the cache" >&2; exit 1; }

echo "==> simc convert: EDIF round trip + warm-cache smoke"
# Interchange smoke over two suite benchmarks: emit EDIF, SPICE and DOT,
# feed the emitted EDIF back through the reader (re-emission must be
# byte-identical — the canonical-form round-trip contract), and require
# the warm second conversion to be answered from the shared cache.
conv_dir="$(mktemp -d)"
trap 'rm -f "$smoke_out"; rm -rf "$fuzz_dir" "$scale_dir" "$batch_dir" "$conv_dir"' EXIT
for bench in Delement berkel3; do
    ./target/release/simc convert "benchmarks/$bench" --to edif \
        --cache-dir "$conv_dir/cache" > "$conv_dir/$bench.edif"
    ./target/release/simc convert "$conv_dir/$bench.edif" --to edif \
        > "$conv_dir/$bench.reread.edif"
    cmp "$conv_dir/$bench.edif" "$conv_dir/$bench.reread.edif" \
        || { echo "error: $bench EDIF round trip not byte-identical" >&2; exit 1; }
    ./target/release/simc convert "benchmarks/$bench" --to spice > /dev/null
    ./target/release/simc convert "benchmarks/$bench" --to dot > /dev/null
done
./target/release/simc convert benchmarks/Delement --to edif \
    --cache-dir "$conv_dir/cache" \
    --stats-json "$conv_dir/warm_stats.json" > "$conv_dir/warm.edif"
cmp "$conv_dir/Delement.edif" "$conv_dir/warm.edif" \
    || { echo "error: warm conversion differs from cold" >&2; exit 1; }
grep -q '"cache.misses": 0' "$conv_dir/warm_stats.json" \
    || { echo "error: warm conversion missed the cache" >&2; exit 1; }
grep -q '"convert.emits": 0' "$conv_dir/warm_stats.json" \
    || { echo "error: warm conversion re-emitted instead of hitting the cache" >&2; exit 1; }

echo "==> ci: all green"
