#!/usr/bin/env bash
# Tier-1 CI gate: release build, full test suite, clippy with warnings
# denied, and a pipeline-benchmark smoke check against the committed
# baseline. Run from anywhere; operates on the workspace root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> simc fuzz --seed 0xDAC94 --iters 200"
# Fixed-seed differential-fuzzing smoke: exits nonzero on any oracle
# disagreement or any injected netlist fault the verifier misses.
./target/release/simc fuzz --seed 0xDAC94 --iters 200

echo "==> repro_pipeline --smoke --check BENCH_pipeline.json"
# 2-benchmark smoke sweep; fails on malformed JSON or on counters /
# structural columns diverging from the committed baseline, or timings
# regressing more than 10% (+50ms grace).
smoke_out="$(mktemp)"
trap 'rm -f "$smoke_out"' EXIT
./target/release/repro_pipeline --smoke --check BENCH_pipeline.json --out "$smoke_out"

echo "==> ci: all green"
